"""Connectivity verification (LVS-lite) over generated layouts.

Builds a *net graph* from the layout geometry — wires merge where they
touch on the same conducting plane, vias merge the wires they land on,
ports merge with the metal under them — and then checks, statically:

* every device terminal's contact stubs carry the net the schematic
  (the :class:`~repro.cellgen.generator.CellSpec`) says they should,
  and reach that net's port geometry (``CONN-TERM-*``),
* every net is electrically contiguous: one island per net, no floating
  metal (``CONN-FLOAT-NET``),
* no two distinct nets short: wires of different nets never overlap on
  the same conducting plane (``CONN-SHORT``),
* ports sit on metal of their own net (``CONN-PORT-OPEN``).

The graph reuses the overlap predicates of
:mod:`repro.geometry.shapes`: same-net wires connect when their closed
rectangles intersect (touching edges conduct); different-net wires short
only when open interiors overlap (shared edges are legal abutment).
Gate-contact stubs occupy their own plane (see
:func:`repro.verify.drc.is_gate_stub`), so a gate stub crossing a
source/drain bar is a contact tower, not a short.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.geometry.layout import Layout, Wire
from repro.tech.pdk import Technology
from repro.verify.diagnostics import Report
from repro.verify.drc import iter_close_pairs, wire_plane

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cellgen.generator import CellSpec


class NetGraph:
    """Union-find over a layout's conducting shapes.

    Nodes are wires (by index), vias (by index) and ports (by index).
    Only same-net shapes are merged — shorts between different nets are
    detected geometrically, not through the graph — so each net's
    components are its electrical islands.
    """

    def __init__(self, layout: Layout):
        self.layout = layout
        self._parent: dict[tuple[str, int], tuple[str, int]] = {}
        self._wires_by_net_layer: dict[tuple[str, str], list[int]] = {}
        # Plain coordinate tuples per wire: the landing/touch scans are
        # hot and dataclass property access dominates them otherwise.
        self._coords: list[tuple[int, int, int, int]] = []
        for index, wire in enumerate(layout.wires):
            self._wires_by_net_layer.setdefault(
                (wire.net, wire.layer), []
            ).append(index)
            rect = wire.rect
            self._coords.append((rect.x0, rect.y0, rect.x1, rect.y1))
        self._build()

    # -- union-find ------------------------------------------------------

    def find(self, node: tuple[str, int]) -> tuple[str, int]:
        parent = self._parent
        parent.setdefault(node, node)
        root = node
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, a: tuple[str, int], b: tuple[str, int]) -> None:
        self._parent[self.find(a)] = self.find(b)

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        # Union argument order matters below: the second argument's root
        # wins, so merged components are always rooted at a *wire* node.
        # ``find(("v", i)) == ("v", i)`` therefore means "never touched
        # any wire", which the floating-via/port checks rely on.
        layout = self.layout
        coords = self._coords
        # Same-net wires on the same layer connect where they touch.
        for indices in self._wires_by_net_layer.values():
            spans = sorted((coords[i], i) for i in indices)
            for a, (ca, i) in enumerate(spans):
                x1a = ca[2]
                for cb, j in spans[a + 1:]:
                    if cb[0] > x1a:
                        break
                    if cb[1] <= ca[3] and ca[1] <= cb[3]:
                        self.union(("w", i), ("w", j))
        # Vias connect the same-net wires they land on, across planes.
        for v_index, via in enumerate(layout.vias):
            self.find(("v", v_index))
            px, py = via.position.x, via.position.y
            for side in (via.lower_layer, via.upper_layer):
                for w_index in self._wires_by_net_layer.get(
                    (via.net, side), ()
                ):
                    x0, y0, x1, y1 = coords[w_index]
                    if x0 <= px <= x1 and y0 <= py <= y1:
                        self.union(("v", v_index), ("w", w_index))
        # Ports connect to the metal of their net on their layer.
        for p_index, port in enumerate(layout.ports):
            self.find(("p", p_index))
            rect = port.rect
            for w_index in self._wires_by_net_layer.get(
                (port.net, port.layer), ()
            ):
                x0, y0, x1, y1 = coords[w_index]
                if (
                    x0 <= rect.x1
                    and rect.x0 <= x1
                    and y0 <= rect.y1
                    and rect.y0 <= y1
                ):
                    self.union(("p", p_index), ("w", w_index))

    # -- queries ---------------------------------------------------------

    def wire_indices(self, net: str) -> list[int]:
        """Indices of all wires on ``net``."""
        return [
            i
            for (n, _layer), idxs in self._wires_by_net_layer.items()
            if n == net
            for i in idxs
        ]

    def net_islands(self, net: str) -> list[set[int]]:
        """The net's wire indices grouped into connected islands."""
        groups: dict[tuple[str, int], set[int]] = {}
        for index in self.wire_indices(net):
            groups.setdefault(self.find(("w", index)), set()).add(index)
        return list(groups.values())

    def connected(self, a: tuple[str, int], b: tuple[str, int]) -> bool:
        """True when two nodes are in the same electrical island."""
        return self.find(a) == self.find(b)


# ---------------------------------------------------------------------------
# checks
# ---------------------------------------------------------------------------


def _check_shorts(report: Report, layout: Layout) -> None:
    by_plane: dict[tuple[str, str], list[Wire]] = {}
    for wire in layout.wires:
        by_plane.setdefault(wire_plane(wire), []).append(wire)
    for (layer, _level), wires in by_plane.items():
        triples = [(0, w.rect, w) for w in wires]
        for wire_a, wire_b, rect_a, rect_b in iter_close_pairs(triples, 0):
            if wire_a.net == wire_b.net:
                continue
            if rect_a.overlaps(rect_b):
                report.add(
                    "CONN-SHORT",
                    "error",
                    f"nets {wire_a.net!r} and {wire_b.net!r} short on "
                    f"{layer}",
                    subject=f"{wire_a.net}/{wire_b.net}",
                    rect=rect_a,
                )


def _check_islands(report: Report, layout: Layout, graph: NetGraph) -> None:
    for net in sorted({w.net for w in layout.wires}):
        islands = graph.net_islands(net)
        if len(islands) > 1:
            sizes = sorted((len(island) for island in islands), reverse=True)
            smallest = min(islands, key=len)
            anchor = layout.wires[next(iter(smallest))]
            report.add(
                "CONN-FLOAT-NET",
                "error",
                f"net {net!r} is split into {len(islands)} disconnected "
                f"islands (sizes {sizes})",
                subject=net,
                rect=anchor.rect,
            )


def _check_vias_float(report: Report, layout: Layout, graph: NetGraph) -> None:
    for index, via in enumerate(layout.vias):
        root = graph.find(("v", index))
        if root == ("v", index):
            # Never merged with any wire: the via conducts nothing.
            report.add(
                "CONN-VIA-FLOAT",
                "error",
                f"via on net {via.net!r} "
                f"({via.lower_layer}-{via.upper_layer}) touches no metal "
                f"of its net",
                subject=via.net,
                location=via.position,
            )


def _check_ports(report: Report, layout: Layout, graph: NetGraph) -> None:
    for index, port in enumerate(layout.ports):
        if graph.find(("p", index)) == ("p", index):
            report.add(
                "CONN-PORT-OPEN",
                "error",
                f"port on net {port.net!r} touches no {port.layer} metal "
                f"of its net",
                subject=port.net,
                rect=port.rect,
            )


def _check_terminals(
    report: Report, layout: Layout, graph: NetGraph, spec: "CellSpec"
) -> None:
    stubs_by_owner: dict[str, list[int]] = {}
    for index, wire in enumerate(layout.wires):
        if wire.role == "finger_stub" and wire.owner:
            stubs_by_owner.setdefault(wire.owner, []).append(index)
    port_index = {port.net: i for i, port in enumerate(layout.ports)}

    for dev in spec.devices:
        for terminal in ("d", "g", "s"):
            expected = dev.terminals[terminal]
            owner = f"{dev.name}.{terminal}"
            stubs = stubs_by_owner.get(owner, [])
            if not stubs:
                report.add(
                    "CONN-TERM-MISSING",
                    "error",
                    f"terminal {owner} has no contact stubs in the layout",
                    subject=owner,
                )
                continue
            wrong = [
                i for i in stubs if layout.wires[i].net != expected
            ]
            if wrong:
                found = sorted({layout.wires[i].net for i in wrong})
                report.add(
                    "CONN-TERM-NET",
                    "error",
                    f"terminal {owner} is wired to net(s) {found}, "
                    f"schematic says {expected!r}",
                    subject=owner,
                    rect=layout.wires[wrong[0]].rect,
                )
                continue
            if expected in port_index:
                target = ("p", port_index[expected])
                unreached = [
                    i for i in stubs if not graph.connected(("w", i), target)
                ]
                if unreached:
                    report.add(
                        "CONN-TERM-UNREACHED",
                        "error",
                        f"{len(unreached)} of {len(stubs)} stubs of "
                        f"terminal {owner} do not reach the {expected!r} "
                        f"port",
                        subject=owner,
                        rect=layout.wires[unreached[0]].rect,
                    )

    for net in spec.port_nets:
        has_wires = any(w.net == net for w in layout.wires)
        if has_wires and net not in port_index:
            report.add(
                "CONN-PORT-MISSING",
                "warning",
                f"spec port net {net!r} is wired but has no port shape",
                subject=net,
            )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def run_connectivity(
    layout: Layout,
    tech: Technology,
    spec: "CellSpec | None" = None,
) -> Report:
    """Run the connectivity (LVS-lite) checks on one layout.

    Args:
        layout: The layout to check.
        tech: Technology node (reserved for layer-aware extensions; the
            connectivity model itself is purely geometric).
        spec: When given, terminal wiring is verified against the
            schematic (``CONN-TERM-*`` checks); without it only the
            structural checks run (islands, shorts, ports, vias).

    Returns:
        A :class:`Report` with the violations found.
    """
    del tech  # geometric checks only, kept for signature symmetry
    report = Report(target=layout.name)
    report.checked_shapes = (
        len(layout.wires) + len(layout.vias) + len(layout.ports)
    )
    graph = NetGraph(layout)
    _check_shorts(report, layout)
    _check_islands(report, layout, graph)
    _check_vias_float(report, layout, graph)
    _check_ports(report, layout, graph)
    if spec is not None:
        _check_terminals(report, layout, graph, spec)
    return report
