"""Constraint / symmetry static analysis over generated layouts.

The primitives exist to preserve analog *intent*: matched devices, mirror
symmetry, common centroids, equivalent LDE environments, matched wire
meshes and matched routes.  DRC and connectivity cannot see any of that —
a layout can be flawlessly wired and still have its diff pair clustered
on one side of the cell.  This module checks the intent directly,
statically, against the declaring :class:`~repro.cellgen.generator
.CellSpec` and the pattern recorded in ``layout.metadata``.

Pattern gating — which rule applies where:

================  ==========================================
rule              applies when
================  ==========================================
CONST-MATCH-SIZE  always (any matched group)
CONST-SYM-AXIS    pattern in {ABAB, ABBA, CC2D}, exactly two
                  matched devices with equal unit counts
CONST-CENTROID    pattern in {ABBA, CC2D}, every matched
                  device's unit count even, and either all
                  counts equal or exactly two devices (the
                  ratioed-mirror case)
CONST-MATCH-LDE   same gate as CONST-CENTROID, restricted to
                  two-device groups
CONST-SYM-WIRES   pattern in {ABAB, ABBA, CC2D}, per declared
                  symmetric net pair
================  ==========================================

The LDE gate is empirical, not cosmetic: with more than two matched
devices a common-centroid pattern equalizes the (linear) systematic
gradient but *not* the (harmonic) well-proximity effect — a perfect
four-device ABBA carries ~1 mV of benign WPE spread between the inner
and outer columns, while a genuinely swapped unit in a two-device ABBA
shifts Vth by only a few uV.  Only two-device groups give every matched
device identical column occupancy, which is what makes the tight
:data:`LDE_VTH_TOL` discriminating.

``AABB`` is a *legal* clustered pattern (the paper uses it to show what
matching loses), so the mirror/centroid rules deliberately do not fire
on it; :func:`run_constraints` never punishes a layout for a property
its declared pattern does not promise.

:func:`check_route_parallelism` (CONST-ROUTE-PARALLEL) runs at the flow
level on :class:`~repro.pnr.detailed.DetailedRoute` results, where the
reconciled wire budgets and matched-net annotations live.

All checks are total: a corrupted layout yields violations, never an
exception.
"""

from __future__ import annotations

from typing import Mapping

from repro.cellgen.generator import CellSpec
from repro.errors import ExtractionError
from repro.extraction.lde_extract import extract_lde
from repro.geometry.layout import DevicePlacement, Layout
from repro.pnr.detailed import DetailedRoute
from repro.tech.pdk import Technology
from repro.verify.diagnostics import Report

__all__ = [
    "run_constraints",
    "check_route_parallelism",
    "MIRROR_PATTERNS",
    "CENTROID_PATTERNS",
    "LDE_VTH_TOL",
    "LDE_MU_TOL",
]

#: Patterns that promise per-row mirror symmetry for a two-device group.
MIRROR_PATTERNS = ("ABAB", "ABBA", "CC2D")

#: Patterns that promise a shared centroid (given even unit counts).
CENTROID_PATTERNS = ("ABBA", "CC2D")

#: Tolerances for LDE-environment equivalence between matched devices.
#: Symmetric patterns cancel the systematic gradient *exactly* and give
#: matched devices identical column occupancy, so the expected residual
#: is float noise; anything above these bounds is a real asymmetry.
LDE_VTH_TOL = 1e-6  # V
LDE_MU_TOL = 1e-6  # mobility factor (dimensionless)

#: Positional tolerance (nm) for mirror/centroid coincidence.  Layout
#: coordinates are integer nanometres and matched units share widths, so
#: symmetric placements reflect exactly; 1 nm absorbs the half-unit
#: rounding of odd-width axes.
POSITION_TOL = 1.0


def run_constraints(
    layout: Layout, spec: CellSpec, tech: Technology
) -> Report:
    """Run every constraint/symmetry check on one primitive layout.

    Args:
        layout: A generated (or corrupted) primitive layout.
        spec: The cell spec declaring the matched group, ports and
            symmetric net pairs.
        tech: Technology node (for LDE extraction).

    Returns:
        A report of ``CONST-*`` findings; empty for layouts that honor
        their declared pattern.
    """
    report = Report(target=layout.name)
    pattern = str(layout.metadata.get("pattern", "")).upper()

    matched = [name for name in spec.matched_group]
    placements: dict[str, list[DevicePlacement]] = {m: [] for m in matched}
    for placement in layout.devices:
        if placement.device in placements:
            placements[placement.device].append(placement)
    report.checked_shapes = sum(len(p) for p in placements.values())

    _check_matched_sizes(spec, placements, report, layout.name)
    counts_ok = all(
        len(placements[name]) == spec.device(name).geometry.m
        for name in matched
    )
    if pattern in MIRROR_PATTERNS and len(matched) == 2 and counts_ok:
        a, b = matched
        if spec.device(a).geometry.m == spec.device(b).geometry.m:
            _check_mirror_symmetry(
                a, placements[a], b, placements[b], report, layout.name
            )
    counts = [spec.device(n).geometry.m for n in matched]
    if (
        pattern in CENTROID_PATTERNS
        and counts_ok
        and matched
        and all(m % 2 == 0 for m in counts)
        and (len(matched) == 2 or len(set(counts)) == 1)
    ):
        _check_common_centroid(placements, report, layout.name)
        if len(matched) == 2:
            _check_lde_matching(layout, spec, tech, report)
    if pattern in MIRROR_PATTERNS:
        # Clustered (AABB) rows put each net in its own device's rows
        # only, so mesh equality is structurally out of reach there —
        # the clustered pattern makes no matching promise to break.
        _check_symmetric_wires(layout, spec, report)
    return report


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _check_matched_sizes(
    spec: CellSpec,
    placements: Mapping[str, list[DevicePlacement]],
    report: Report,
    layout_name: str,
) -> None:
    """CONST-MATCH-SIZE: one shared unit sizing across the matched group."""
    reference: tuple[int, int, int] | None = None
    ref_device = ""
    for name in spec.matched_group:
        dev = spec.device(name)
        units = placements.get(name, [])
        if len(units) != dev.geometry.m:
            report.flag(
                "CONST-MATCH-SIZE",
                f"device {name} places {len(units)} unit(s) but its "
                f"geometry declares m={dev.geometry.m}",
                layout=layout_name,
                subject=name,
            )
        for unit in units:
            shape = (unit.nfin, unit.nf, unit.dummy_fingers)
            if reference is None:
                reference, ref_device = shape, name
            elif shape != reference:
                report.flag(
                    "CONST-MATCH-SIZE",
                    f"unit {name}[{unit.unit_index}] is (nfin={unit.nfin}, "
                    f"nf={unit.nf}, dummies={unit.dummy_fingers}) but the "
                    f"group's reference {ref_device} is (nfin="
                    f"{reference[0]}, nf={reference[1]}, dummies="
                    f"{reference[2]})",
                    layout=layout_name,
                    subject=name,
                    location=unit.rect.center,
                )


def _check_mirror_symmetry(
    name_a: str,
    units_a: list[DevicePlacement],
    name_b: str,
    units_b: list[DevicePlacement],
    report: Report,
    layout_name: str,
) -> None:
    """CONST-SYM-AXIS: per-row mirror symmetry of a two-device group.

    Each row of the matched stack must hold the same number of A and B
    units, with A's unit centers reflecting onto B's about the row's
    own vertical axis.
    """
    rows: dict[int, dict[str, list[DevicePlacement]]] = {}
    for name, units in ((name_a, units_a), (name_b, units_b)):
        for unit in units:
            row = rows.setdefault(unit.rect.y0, {name_a: [], name_b: []})
            row[name].append(unit)

    for y0 in sorted(rows):
        row = rows[y0]
        in_a, in_b = row[name_a], row[name_b]
        if len(in_a) != len(in_b):
            report.flag(
                "CONST-SYM-AXIS",
                f"row at y={y0} holds {len(in_a)} {name_a} unit(s) and "
                f"{len(in_b)} {name_b} unit(s); mirror rows need equal "
                f"counts",
                layout=layout_name,
                subject=f"{name_a}/{name_b}",
            )
            continue
        extent = [u.rect for u in in_a + in_b]
        axis = (min(r.x0 for r in extent) + max(r.x1 for r in extent)) / 2.0
        reflected = sorted(2.0 * axis - u.rect.center.x for u in in_a)
        actual = sorted(float(u.rect.center.x) for u in in_b)
        for want, got in zip(reflected, actual):
            if abs(want - got) > POSITION_TOL:
                report.flag(
                    "CONST-SYM-AXIS",
                    f"row at y={y0}: {name_b} unit at x={got:.0f} does "
                    f"not mirror {name_a} about the row axis "
                    f"(expected x={want:.0f})",
                    layout=layout_name,
                    subject=f"{name_a}/{name_b}",
                )


def _check_common_centroid(
    placements: Mapping[str, list[DevicePlacement]],
    report: Report,
    layout_name: str,
) -> None:
    """CONST-CENTROID: matched devices share one placement centroid."""
    centroids: dict[str, tuple[float, float]] = {}
    for name, units in placements.items():
        if not units:
            continue
        centroids[name] = (
            sum(u.rect.center.x for u in units) / len(units),
            sum(u.rect.center.y for u in units) / len(units),
        )
    if len(centroids) < 2:
        return
    names = sorted(centroids)
    ref_name = names[0]
    ref = centroids[ref_name]
    for name in names[1:]:
        cx, cy = centroids[name]
        if abs(cx - ref[0]) > POSITION_TOL or abs(cy - ref[1]) > POSITION_TOL:
            report.flag(
                "CONST-CENTROID",
                f"centroid of {name} is ({cx:.1f}, {cy:.1f}) but "
                f"{ref_name}'s is ({ref[0]:.1f}, {ref[1]:.1f}); the "
                f"common-centroid pattern requires coincidence",
                layout=layout_name,
                subject=name,
            )


def _check_lde_matching(
    layout: Layout, spec: CellSpec, tech: Technology, report: Report
) -> None:
    """CONST-MATCH-LDE: equivalent LDE environments for matched devices."""
    contexts = {}
    for name in spec.matched_group:
        dev = spec.device(name)
        try:
            card = tech.card(dev.polarity)
            contexts[name] = extract_lde(layout, name, card, tech)
        except ExtractionError:
            # Missing placements / wells are CONST-MATCH-SIZE or DRC
            # territory; LDE equivalence is undefined for them.
            continue
    if len(contexts) < 2:
        return
    names = sorted(contexts)
    ref_name = names[0]
    ref = contexts[ref_name]
    for name in names[1:]:
        lde = contexts[name]
        dvth = abs(lde.vth_shift - ref.vth_shift)
        dmu = abs(lde.mobility_factor - ref.mobility_factor)
        if dvth > LDE_VTH_TOL or dmu > LDE_MU_TOL:
            report.flag(
                "CONST-MATCH-LDE",
                f"LDE environment of {name} deviates from {ref_name}'s: "
                f"|dVth|={dvth:.3e} V (tol {LDE_VTH_TOL:.0e}), "
                f"|dmu|={dmu:.3e} (tol {LDE_MU_TOL:.0e})",
                layout=layout.name,
                subject=name,
            )


def _check_symmetric_wires(
    layout: Layout, spec: CellSpec, report: Report
) -> None:
    """CONST-SYM-WIRES: symmetric net pairs carry identical wire meshes."""
    for net_a, net_b in spec.symmetric_pairs:
        profile_a = _mesh_profile(layout, net_a)
        profile_b = _mesh_profile(layout, net_b)
        if not profile_a and not profile_b:
            continue  # neither net is wired (e.g. bulk-only nets)
        if profile_a != profile_b:
            diffs = sorted(
                key
                for key in set(profile_a) | set(profile_b)
                if profile_a.get(key, 0) != profile_b.get(key, 0)
            )
            detail = ", ".join(
                f"{layer}/{role}: {profile_a.get((layer, role), 0)} vs "
                f"{profile_b.get((layer, role), 0)}"
                for layer, role in diffs
            )
            report.flag(
                "CONST-SYM-WIRES",
                f"wire meshes of symmetric pair ({net_a}, {net_b}) "
                f"differ ({detail})",
                layout=layout.name,
                subject=f"{net_a}/{net_b}",
            )


#: Wire roles the symmetric-mesh comparison covers.  Finger stubs (and
#: the vias that land on them) follow the diffusion column parity
#: (``S D S ...``), which a symmetric pair spanning one device's drain
#: and source can never equalize; the mesh the tuning lever actually
#: controls — row straps, jumpers and trunk rails — must match exactly.
_MESH_ROLES = ("strap", "strap_jumper", "rail", "route")


def _mesh_profile(layout: Layout, net: str) -> dict[tuple[str, str], int]:
    """Configurable-mesh shape counts per (layer, role) for one net."""
    profile: dict[tuple[str, str], int] = {}
    for wire in layout.wires_on_net(net):
        if wire.role not in _MESH_ROLES:
            continue
        key = (wire.layer, wire.role)
        profile[key] = profile.get(key, 0) + 1
    return profile


# ---------------------------------------------------------------------------
# flow-level route parallelism
# ---------------------------------------------------------------------------


def check_route_parallelism(
    routes: Mapping[str, DetailedRoute],
    budgets: Mapping[str, int] | None = None,
    target: str = "routes",
) -> Report:
    """CONST-ROUTE-PARALLEL: matched routes realize consistent wire counts.

    Args:
        routes: Detailed routes keyed by net, as produced by
            :func:`repro.pnr.detailed.realize_routes`.
        budgets: Reconciled parallel-wire budgets per net (nets not
            listed budget 1); when given, every route's realized count
            must meet its (matched-pair-shared) budget.
        target: Report target name.

    Returns:
        A report of ``CONST-ROUTE-PARALLEL`` findings.
    """
    report = Report(target=target)
    report.checked_shapes = len(routes)
    for net in sorted(routes):
        route = routes[net]
        partner_name = route.matched_with
        if partner_name is not None:
            partner = routes.get(partner_name)
            if partner is None:
                report.flag(
                    "CONST-ROUTE-PARALLEL",
                    f"route {net} is matched with {partner_name} but "
                    f"{partner_name} has no detailed route",
                    layout=target,
                    subject=net,
                )
            elif partner.n_parallel != route.n_parallel:
                if net < partner_name:  # report each pair once
                    report.flag(
                        "CONST-ROUTE-PARALLEL",
                        f"matched routes ({net}, {partner_name}) realize "
                        f"{route.n_parallel} vs {partner.n_parallel} "
                        f"parallel wires; matched nets must share one "
                        f"count",
                        layout=target,
                        subject=f"{net}/{partner_name}",
                    )
        if budgets is not None:
            expected = max(1, budgets.get(net, 1))
            if partner_name is not None:
                expected = max(expected, budgets.get(partner_name, 1))
            if route.n_parallel < expected:
                report.flag(
                    "CONST-ROUTE-PARALLEL",
                    f"route {net} realizes {route.n_parallel} parallel "
                    f"wire(s) but its reconciled budget is {expected}",
                    layout=target,
                    subject=net,
                )
    return report
