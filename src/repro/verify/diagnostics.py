"""Verification diagnostics: violations and reports.

Every check in :mod:`repro.verify.drc` and
:mod:`repro.verify.connectivity` emits :class:`Violation` records with a
stable rule ID (``DRC-...`` / ``CONN-...``), a severity, the offending
shape's location, and a human-readable message.  A :class:`Report`
aggregates them and renders either plain text (for the CLI) or JSON (for
tooling).

Severity semantics:

* ``"error"`` — the layout is wrong: a rule derived from the technology
  is violated, or the geometry does not implement the schematic
  connectivity.  ``repro verify`` exits nonzero on any error.
* ``"warning"`` — the layout is suspicious but not provably broken under
  the generator's geometry abstractions (e.g. a via chain landing on one
  layer only).  Warnings never fail a strict verification.

See ``docs/verification.md`` for the full rule-ID catalog.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import VerificationError
from repro.geometry.shapes import Point, Rect

#: Valid severities, in increasing order of badness.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Violation:
    """One rule violation found by a static check.

    Attributes:
        rule: Stable rule identifier, e.g. ``"DRC-FIN-PITCH"`` or
            ``"CONN-FLOAT-NET"``.
        severity: ``"error"`` or ``"warning"``.
        message: Human-readable description of what is wrong.
        layout: Name of the layout the violation was found in.
        subject: The offending object: a net, device, port or layer name.
        location: Representative point of the offending geometry, if any.
        rect: Offending rectangle, if the violation has an extent.
    """

    rule: str
    severity: str
    message: str
    layout: str = ""
    subject: str = ""
    location: Point | None = None
    rect: Rect | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise VerificationError(
                f"violation severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def render(self) -> str:
        """One-line text rendering: ``ERROR DRC-X [cell/net] message @ (x, y)``."""
        where = ""
        if self.location is not None:
            where = f" @ ({self.location.x}, {self.location.y})"
        elif self.rect is not None:
            where = (
                f" @ ({self.rect.x0}, {self.rect.y0})"
                f"..({self.rect.x1}, {self.rect.y1})"
            )
        context = "/".join(p for p in (self.layout, self.subject) if p)
        context = f" [{context}]" if context else ""
        return f"{self.severity.upper():7s} {self.rule}{context} {self.message}{where}"

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        out: dict = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.layout:
            out["layout"] = self.layout
        if self.subject:
            out["subject"] = self.subject
        if self.location is not None:
            out["location"] = [self.location.x, self.location.y]
        if self.rect is not None:
            out["rect"] = [self.rect.x0, self.rect.y0, self.rect.x1, self.rect.y1]
        return out


@dataclass
class Report:
    """Aggregated verification results for one layout (or one run).

    Attributes:
        target: What was verified (layout or run name).
        violations: All violations, in discovery order.
        checked_shapes: Number of shapes the checks covered (devices +
            wires + vias + ports); a coverage indicator for reports.
    """

    target: str = ""
    violations: list[Violation] = field(default_factory=list)
    checked_shapes: int = 0

    def add(
        self,
        rule: str,
        severity: str,
        message: str,
        *,
        layout: str = "",
        subject: str = "",
        location: Point | None = None,
        rect: Rect | None = None,
    ) -> Violation:
        """Record a violation and return it."""
        violation = Violation(
            rule=rule,
            severity=severity,
            message=message,
            layout=layout or self.target,
            subject=subject,
            location=location,
            rect=rect,
        )
        self.violations.append(violation)
        return violation

    def merge(self, other: "Report") -> "Report":
        """Fold another report's findings into this one (in place)."""
        self.violations.extend(other.violations)
        self.checked_shapes += other.checked_shapes
        return self

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations if v.is_error]

    @property
    def warnings(self) -> list[Violation]:
        return [v for v in self.violations if not v.is_error]

    @property
    def ok(self) -> bool:
        """True when the report has no errors (warnings are allowed)."""
        return not self.errors

    def rules_hit(self) -> list[str]:
        """Sorted unique rule IDs present in the report."""
        return sorted({v.rule for v in self.violations})

    def count(self, rule: str) -> int:
        """Number of violations of one rule."""
        return sum(1 for v in self.violations if v.rule == rule)

    def counts_by_rule(self) -> dict[str, int]:
        """Violation count per rule ID, sorted by rule."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> str:
        """One-line status: ``<target>: CLEAN|n error(s), m warning(s)``."""
        name = self.target or "verification"
        if not self.violations:
            return f"{name}: CLEAN ({self.checked_shapes} shapes checked)"
        return (
            f"{name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )

    def render_text(self, max_per_rule: int | None = None) -> str:
        """Multi-line text report: summary, then violations grouped by rule.

        Args:
            max_per_rule: Cap the listed violations per rule (the count
                line always reports the true total).
        """
        lines = [self.summary()]
        by_rule: dict[str, list[Violation]] = {}
        for violation in self.violations:
            by_rule.setdefault(violation.rule, []).append(violation)
        for rule in sorted(by_rule):
            group = by_rule[rule]
            lines.append(f"  {rule}: {len(group)}")
            shown = group if max_per_rule is None else group[:max_per_rule]
            for violation in shown:
                lines.append(f"    {violation.render()}")
            if max_per_rule is not None and len(group) > max_per_rule:
                lines.append(f"    ... {len(group) - max_per_rule} more")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable representation of the whole report."""
        return {
            "target": self.target,
            "ok": self.ok,
            "checked_shapes": self.checked_shapes,
            "counts": self.counts_by_rule(),
            "violations": [v.to_dict() for v in self.violations],
        }

    def render_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def raise_if_errors(self) -> None:
        """Raise :class:`VerificationError` if the report has errors."""
        if not self.ok:
            raise VerificationError(self.render_text(max_per_rule=5), report=self)
