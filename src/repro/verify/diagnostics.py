"""Verification diagnostics: violations and reports.

Every check in :mod:`repro.verify.drc`, :mod:`repro.verify.connectivity`,
:mod:`repro.verify.erc` and :mod:`repro.verify.constraints` emits
:class:`Violation` records with a stable rule ID (``DRC-...`` /
``CONN-...`` / ``ERC-...`` / ``CONST-...``), a severity, the offending
shape's location, and a human-readable message.  A :class:`Report`
aggregates them and renders either plain text (for the CLI) or JSON (for
tooling).

Severity semantics:

* ``"error"`` — the layout is wrong: a rule derived from the technology
  is violated, or the geometry does not implement the schematic
  connectivity.  ``repro verify`` exits nonzero on any unwaived error.
* ``"warning"`` — the layout is suspicious but not provably broken under
  the generator's geometry abstractions (e.g. a via chain landing on one
  layer only).  Warnings never fail a strict verification.

A violation may additionally be **waived**: matched by an explicit
entry in a ``.reprolint.toml`` baseline (:class:`repro.verify.rules
.WaiverSet`).  Waived violations stay visible in reports and JSON
output but do not count against :attr:`Report.ok`.

See ``docs/verification.md`` for the full rule-ID catalog.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from datetime import date
from typing import Any

from repro.errors import VerificationError
from repro.geometry.shapes import Point, Rect
from repro.verify.rules import WaiverSet, rule as rule_def

#: Valid severities, in increasing order of badness.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Violation:
    """One rule violation found by a static check.

    Attributes:
        rule: Stable rule identifier, e.g. ``"DRC-FIN-PITCH"`` or
            ``"CONN-FLOAT-NET"``.
        severity: ``"error"`` or ``"warning"``.
        message: Human-readable description of what is wrong.
        layout: Name of the layout the violation was found in.
        subject: The offending object: a net, device, port or layer name.
        location: Representative point of the offending geometry, if any.
        rect: Offending rectangle, if the violation has an extent.
        waived: True when a baseline waiver covers this violation.
        waive_reason: The waiver's reason, when waived.
    """

    rule: str
    severity: str
    message: str
    layout: str = ""
    subject: str = ""
    location: Point | None = None
    rect: Rect | None = None
    waived: bool = False
    waive_reason: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise VerificationError(
                f"violation severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def sort_key(self) -> tuple[str, str, str, int, int, str]:
        """Deterministic ordering key: layout, rule, subject, coords."""
        if self.location is not None:
            x, y = self.location.x, self.location.y
        elif self.rect is not None:
            x, y = self.rect.x0, self.rect.y0
        else:
            x, y = 0, 0
        return (self.layout, self.rule, self.subject, x, y, self.message)

    def render(self) -> str:
        """One-line text rendering: ``ERROR DRC-X [cell/net] message @ (x, y)``."""
        where = ""
        if self.location is not None:
            where = f" @ ({self.location.x}, {self.location.y})"
        elif self.rect is not None:
            where = (
                f" @ ({self.rect.x0}, {self.rect.y0})"
                f"..({self.rect.x1}, {self.rect.y1})"
            )
        context = "/".join(p for p in (self.layout, self.subject) if p)
        context = f" [{context}]" if context else ""
        waived = " (waived)" if self.waived else ""
        return (
            f"{self.severity.upper():7s} {self.rule}{context} "
            f"{self.message}{where}{waived}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.layout:
            out["layout"] = self.layout
        if self.subject:
            out["subject"] = self.subject
        if self.location is not None:
            out["location"] = [self.location.x, self.location.y]
        if self.rect is not None:
            out["rect"] = [self.rect.x0, self.rect.y0, self.rect.x1, self.rect.y1]
        if self.waived:
            out["waived"] = True
            if self.waive_reason:
                out["waive_reason"] = self.waive_reason
        return out


@dataclass
class Report:
    """Aggregated verification results for one layout (or one run).

    Attributes:
        target: What was verified (layout or run name).
        violations: All violations, in discovery order.
        checked_shapes: Number of shapes the checks covered (devices +
            wires + vias + ports); a coverage indicator for reports.
    """

    target: str = ""
    violations: list[Violation] = field(default_factory=list)
    checked_shapes: int = 0

    def add(
        self,
        rule: str,
        severity: str,
        message: str,
        *,
        layout: str = "",
        subject: str = "",
        location: Point | None = None,
        rect: Rect | None = None,
    ) -> Violation:
        """Record a violation and return it."""
        violation = Violation(
            rule=rule,
            severity=severity,
            message=message,
            layout=layout or self.target,
            subject=subject,
            location=location,
            rect=rect,
        )
        self.violations.append(violation)
        return violation

    def flag(
        self,
        rule: str,
        message: str,
        *,
        layout: str = "",
        subject: str = "",
        location: Point | None = None,
        rect: Rect | None = None,
        severity: str | None = None,
    ) -> Violation:
        """Record a violation under a *registered* rule.

        Unlike :meth:`add`, the rule ID must exist in
        :mod:`repro.verify.rules` and the severity defaults to the
        registry's; checks should prefer this so IDs and severities
        cannot drift from the catalog.
        """
        info = rule_def(rule)
        return self.add(
            rule,
            severity or info.severity,
            message,
            layout=layout,
            subject=subject,
            location=location,
            rect=rect,
        )

    def merge(self, other: "Report") -> "Report":
        """Fold another report's findings into this one (in place).

        Incoming violations identical to ones already recorded are
        dropped (so repeated sub-layout checks in assemblies do not
        duplicate findings), and the merged list is stably sorted by
        (layout, rule, subject, coordinates) for deterministic output.
        """
        seen = set(self.violations)
        for violation in other.violations:
            if violation in seen:
                continue
            seen.add(violation)
            self.violations.append(violation)
        self.checked_shapes += other.checked_shapes
        self.violations.sort(key=Violation.sort_key)
        return self

    def apply_waivers(
        self, waivers: WaiverSet | None, today: date | None = None
    ) -> int:
        """Mark violations covered by the baseline as waived.

        Returns the number of newly waived violations.  Waived
        violations stay in the report (and render flagged) but no
        longer count toward :attr:`errors` / :attr:`warnings`.

        Waivers carrying an ``expires`` date are honoured only until
        that date (inclusive, relative to ``today``, defaulting to the
        current date); an expired waiver stops suppressing and is
        itself reported once per report as a ``LINT-WAIVER-EXPIRED``
        warning so stale baselines surface instead of rotting.
        """
        if waivers is None or not len(waivers):
            return 0
        if today is None:
            today = date.today()
        waived = 0
        for i, violation in enumerate(self.violations):
            if violation.waived:
                continue
            for waiver in waivers:
                if waiver.matches(violation) and not waiver.is_expired(today):
                    self.violations[i] = replace(
                        violation, waived=True, waive_reason=waiver.reason
                    )
                    waived += 1
                    break
        for waiver in waivers:
            if not waiver.is_expired(today):
                continue
            message = (
                f"waiver for {waiver.rule} (layout {waiver.layout!r}, "
                f"subject {waiver.subject!r}) expired {waiver.expires}"
            )
            already = any(
                v.rule == "LINT-WAIVER-EXPIRED" and v.message == message
                for v in self.violations
            )
            if not already:
                self.flag(
                    "LINT-WAIVER-EXPIRED", message, subject=waiver.rule
                )
        return waived

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations if v.is_error and not v.waived]

    @property
    def warnings(self) -> list[Violation]:
        return [v for v in self.violations if not v.is_error and not v.waived]

    @property
    def waived_violations(self) -> list[Violation]:
        return [v for v in self.violations if v.waived]

    @property
    def ok(self) -> bool:
        """True when the report has no unwaived errors."""
        return not self.errors

    def fails(self, threshold: str = "error") -> bool:
        """True when unwaived findings at or above ``threshold`` exist.

        ``threshold="error"`` (the default) fails only on errors;
        ``threshold="warning"`` also fails on warnings.
        """
        if threshold not in SEVERITIES:
            raise VerificationError(
                f"severity threshold must be one of {SEVERITIES}, "
                f"got {threshold!r}"
            )
        if threshold == "warning":
            return bool(self.errors) or bool(self.warnings)
        return bool(self.errors)

    def rules_hit(self) -> list[str]:
        """Sorted unique rule IDs present in the report."""
        return sorted({v.rule for v in self.violations})

    def count(self, rule: str) -> int:
        """Number of violations of one rule."""
        return sum(1 for v in self.violations if v.rule == rule)

    def counts_by_rule(self) -> dict[str, int]:
        """Violation count per rule ID, sorted by rule."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> str:
        """One-line status: ``<target>: CLEAN|n error(s), m warning(s)``."""
        name = self.target or "verification"
        if not self.violations:
            return f"{name}: CLEAN ({self.checked_shapes} shapes checked)"
        waived = len(self.waived_violations)
        suffix = f", {waived} waived" if waived else ""
        return (
            f"{name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s){suffix}"
        )

    def render_text(self, max_per_rule: int | None = None) -> str:
        """Multi-line text report: summary, then violations grouped by rule.

        Args:
            max_per_rule: Cap the listed violations per rule (the count
                line always reports the true total).
        """
        lines = [self.summary()]
        by_rule: dict[str, list[Violation]] = {}
        for violation in self.violations:
            by_rule.setdefault(violation.rule, []).append(violation)
        for rule in sorted(by_rule):
            group = by_rule[rule]
            lines.append(f"  {rule}: {len(group)}")
            shown = group if max_per_rule is None else group[:max_per_rule]
            for violation in shown:
                lines.append(f"    {violation.render()}")
            if max_per_rule is not None and len(group) > max_per_rule:
                lines.append(f"    ... {len(group) - max_per_rule} more")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation of the whole report."""
        return {
            "target": self.target,
            "ok": self.ok,
            "checked_shapes": self.checked_shapes,
            "waived": len(self.waived_violations),
            "counts": self.counts_by_rule(),
            "violations": [v.to_dict() for v in self.violations],
        }

    def render_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def raise_if_errors(self) -> None:
        """Raise :class:`VerificationError` if the report has errors."""
        if not self.ok:
            raise VerificationError(self.render_text(max_per_rule=5), report=self)
