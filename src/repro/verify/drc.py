"""Design-rule checks over generated layouts.

A pure static-analysis pass: every check walks :class:`~repro.geometry.
layout.Layout` shapes and tests an invariant derivable from the
technology's :class:`~repro.tech.rules.DesignRules` and metal stack.  No
simulation, no extraction.

Gridded-FinFET invariants checked here:

* device active areas sit on the fin/poly pitch grid and match the
  footprint formulas in :mod:`repro.tech.rules`,
* no two active areas overlap,
* wires meet their layer's minimum width, and routing wires of different
  nets keep the layer's minimum spacing (``pitch - min_width``),
* vias join adjacent metals with at least one cut and land on same-net
  metal,
* the well encloses every device by the well-enclosure rule,
* ports lie inside the cell and reference real metal layers.

Two geometry conventions of the cell generator are deliberately
tolerated (see ``docs/verification.md`` for the rationale):

* **Finger stubs** (``role == "finger_stub"``) are device-level contact
  bars locked to the poly grid; their mutual spacing is set by the
  contacted poly pitch, not the M1 routing rule, so the wire-spacing
  check skips stub pairs (the grid itself is checked by
  ``DRC-POLY-PITCH``).
* **Via chains** may land on one metal only (``DRC-VIA-ENCLOSURE`` is a
  warning): the generator stacks redundant cuts at every strap crossing
  and relies on the rail mesh for the return path.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import TechnologyError
from repro.geometry.layout import DevicePlacement, Layout, Wire
from repro.geometry.shapes import Rect
from repro.tech.pdk import Technology
from repro.verify.diagnostics import Report


def iter_close_pairs(
    rects: list[tuple[int, Rect, object]], margin: int
) -> Iterator[tuple[object, object, Rect, Rect]]:
    """Yield payload pairs whose rectangles come within ``margin`` (nm).

    A plane-sweep over x: rectangles are sorted by ``x0`` and each is
    compared only against neighbours whose x-extents overlap within the
    margin, which keeps dense same-layer checks near-linear for the
    row-structured layouts the generator emits.

    Args:
        rects: ``(sort_ignored, rect, payload)`` triples.
        margin: Maximum separation (in both axes) for a pair to be
            reported; ``0`` reports touching or overlapping pairs only.
    """
    items = sorted(rects, key=lambda t: t[1].x0)
    for i, (_, rect_a, pay_a) in enumerate(items):
        limit = rect_a.x1 + margin
        for _, rect_b, pay_b in items[i + 1:]:
            if rect_b.x0 > limit:
                break
            if rect_b.y0 - rect_a.y1 <= margin and rect_a.y0 - rect_b.y1 <= margin:
                yield pay_a, pay_b, rect_a, rect_b


def rect_gap(a: Rect, b: Rect) -> int:
    """Axis separation between two rectangles (nm); negative on overlap."""
    dx = max(a.x0 - b.x1, b.x0 - a.x1)
    dy = max(a.y0 - b.y1, b.y0 - a.y1)
    return max(dx, dy)


def is_gate_stub(wire: Wire) -> bool:
    """True for gate-contact stubs, which sit on their own conducting plane.

    The generator models gate contacts as ``finger_stub`` wires on
    ``"M1"`` owned by a ``.g`` terminal; physically they are contact
    towers over the gate, one level apart from the source/drain trench
    contacts, so they neither short nor connect to s/d stubs by overlap.
    """
    return wire.role == "finger_stub" and wire.owner.endswith(".g")


def wire_plane(wire: Wire) -> tuple[str, str]:
    """The conducting plane a wire occupies: ``(layer, level)``."""
    return (wire.layer, "gate" if is_gate_stub(wire) else "metal")


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _check_device_grid(
    report: Report,
    devices: Iterable[DevicePlacement],
    tech: Technology,
    absolute_grid: bool = True,
) -> None:
    rules = tech.rules
    for dev in devices:
        subject = f"{dev.device}[{dev.unit_index}]"
        if dev.rect.height != dev.nfin * rules.fin_pitch:
            report.add(
                "DRC-FIN-PITCH",
                "error",
                f"active height {dev.rect.height}nm is off the fin grid "
                f"(expected {dev.nfin} fins x {rules.fin_pitch}nm "
                f"= {dev.nfin * rules.fin_pitch}nm)",
                subject=subject,
                rect=dev.rect,
            )
        if dev.rect.width != dev.nf * rules.poly_pitch:
            report.add(
                "DRC-POLY-PITCH",
                "error",
                f"active width {dev.rect.width}nm is off the poly grid "
                f"(expected {dev.nf} fingers x {rules.poly_pitch}nm "
                f"= {dev.nf * rules.poly_pitch}nm)",
                subject=subject,
                rect=dev.rect,
            )
        elif (
            absolute_grid
            and (dev.rect.x0 - rules.diffusion_extension) % rules.poly_pitch
        ):
            report.add(
                "DRC-POLY-PITCH",
                "error",
                f"active x0={dev.rect.x0}nm is not on the poly pitch grid "
                f"(offset {rules.diffusion_extension}nm, "
                f"pitch {rules.poly_pitch}nm)",
                subject=subject,
                rect=dev.rect,
            )
        expected = rules.finger_footprint(
            dev.nf, with_dummies=dev.dummy_fingers > 0
        )
        actual = (
            dev.rect.width
            + 2 * dev.dummy_fingers * rules.poly_pitch
            + 2 * rules.diffusion_extension
        )
        if dev.rect.width == dev.nf * rules.poly_pitch and actual != expected:
            report.add(
                "DRC-FINGER-FOOTPRINT",
                "error",
                f"unit footprint {actual}nm does not match "
                f"finger_footprint({dev.nf}) = {expected}nm "
                f"({dev.dummy_fingers} dummy fingers placed, "
                f"{rules.dummy_fingers} required)",
                subject=subject,
                rect=dev.rect,
            )


def _check_active_overlap(
    report: Report, devices: list[DevicePlacement]
) -> None:
    triples = [(0, d.rect, d) for d in devices]
    for dev_a, dev_b, rect_a, rect_b in iter_close_pairs(triples, 0):
        if rect_a.overlaps(rect_b):
            report.add(
                "DRC-ACTIVE-OVERLAP",
                "error",
                f"active areas of {dev_a.device}[{dev_a.unit_index}] and "
                f"{dev_b.device}[{dev_b.unit_index}] overlap",
                subject=dev_a.device,
                rect=rect_a,
            )


def _check_wires(report: Report, layout: Layout, tech: Technology) -> None:
    stack = tech.stack
    by_layer: dict[str, list[Wire]] = {}
    for wire in layout.wires:
        try:
            layer = stack.metal(wire.layer)
        except TechnologyError:
            report.add(
                "DRC-LAYER-UNKNOWN",
                "error",
                f"wire on unknown layer {wire.layer!r}",
                subject=wire.net,
                rect=wire.rect,
            )
            continue
        if wire.width < layer.min_width:
            report.add(
                "DRC-WIRE-WIDTH",
                "error",
                f"{wire.layer} wire is {wire.width}nm wide, minimum is "
                f"{layer.min_width}nm",
                subject=wire.net,
                rect=wire.rect,
            )
        by_layer.setdefault(wire.layer, []).append(wire)

    # Spacing between routing wires of different nets.  Device-level
    # finger stubs are excluded: their pitch is the contacted poly pitch,
    # already enforced by DRC-POLY-PITCH.
    for name, wires in by_layer.items():
        layer = stack.metal(name)
        spacing = layer.pitch - layer.min_width
        routing = [
            (0, w.rect, w) for w in wires if w.role != "finger_stub"
        ]
        for wire_a, wire_b, rect_a, rect_b in iter_close_pairs(
            routing, max(spacing - 1, 0)
        ):
            if wire_a.net == wire_b.net:
                continue
            gap = rect_gap(rect_a, rect_b)
            if 0 <= gap < spacing:
                report.add(
                    "DRC-WIRE-SPACING",
                    "error",
                    f"{name} wires on nets {wire_a.net!r} and "
                    f"{wire_b.net!r} are {gap}nm apart, minimum spacing "
                    f"is {spacing}nm",
                    subject=f"{wire_a.net}/{wire_b.net}",
                    rect=rect_a,
                )


def _check_vias(report: Report, layout: Layout, tech: Technology) -> None:
    stack = tech.stack
    # Plain coordinate tuples: the landing scan is the hottest loop in
    # the whole pass and dataclass property access dominates it.
    wires_at: dict[tuple[str, str], list[tuple[int, int, int, int]]] = {}
    for wire in layout.wires:
        rect = wire.rect
        wires_at.setdefault((wire.net, wire.layer), []).append(
            (rect.x0, rect.y0, rect.x1, rect.y1)
        )

    for via in layout.vias:
        subject = f"{via.net}:{via.lower_layer}-{via.upper_layer}"
        try:
            lower = stack.metal(via.lower_layer)
            upper = stack.metal(via.upper_layer)
        except TechnologyError:
            report.add(
                "DRC-VIA-STACK",
                "error",
                f"via references unknown layer pair "
                f"({via.lower_layer!r}, {via.upper_layer!r})",
                subject=subject,
                location=via.position,
            )
            continue
        if upper.index - lower.index != 1:
            report.add(
                "DRC-VIA-STACK",
                "error",
                f"via joins non-adjacent metals {via.lower_layer} "
                f"(index {lower.index}) and {via.upper_layer} "
                f"(index {upper.index})",
                subject=subject,
                location=via.position,
            )
        if via.cuts < 1:
            report.add(
                "DRC-VIA-CUTS",
                "error",
                f"via has {via.cuts} cuts, need at least 1",
                subject=subject,
                location=via.position,
            )
        px, py = via.position.x, via.position.y
        for side in (via.lower_layer, via.upper_layer):
            landings = wires_at.get((via.net, side), ())
            if not any(
                x0 <= px <= x1 and y0 <= py <= y1
                for x0, y0, x1, y1 in landings
            ):
                report.add(
                    "DRC-VIA-ENCLOSURE",
                    "warning",
                    f"via is not enclosed by {side} metal on net "
                    f"{via.net!r}",
                    subject=subject,
                    location=via.position,
                )


def _check_well(report: Report, layout: Layout, tech: Technology) -> None:
    if not layout.devices:
        return
    well = layout.well_rect
    if well is None:
        report.add(
            "DRC-WELL-MISSING",
            "warning",
            "layout places devices but has no well rectangle",
            subject=layout.name,
        )
        return
    margin = tech.rules.well_enclosure
    for dev in layout.devices:
        rect = dev.rect
        if (
            rect.x0 - well.x0 < margin
            or well.x1 - rect.x1 < margin
            or rect.y0 - well.y0 < margin
            or well.y1 - rect.y1 < margin
        ):
            report.add(
                "DRC-WELL-ENCLOSURE",
                "error",
                f"well encloses {dev.device}[{dev.unit_index}] by less "
                f"than {margin}nm",
                subject=dev.device,
                rect=rect,
            )


def _check_ports(report: Report, layout: Layout, tech: Technology) -> None:
    if not layout.ports:
        return
    core_rects = [d.rect for d in layout.devices] + [w.rect for w in layout.wires]
    core: Rect | None = None
    for rect in core_rects:
        core = rect if core is None else core.union(rect)
    for port in layout.ports:
        try:
            tech.stack.metal(port.layer)
        except TechnologyError:
            report.add(
                "DRC-LAYER-UNKNOWN",
                "error",
                f"port on unknown layer {port.layer!r}",
                subject=port.net,
                rect=port.rect,
            )
            continue
        if core is not None and not (
            core.x0 <= port.rect.x0
            and port.rect.x1 <= core.x1
            and core.y0 <= port.rect.y0
            and port.rect.y1 <= core.y1
        ):
            report.add(
                "DRC-PORT-BBOX",
                "error",
                f"port on net {port.net!r} lies outside the cell "
                f"geometry bounding box",
                subject=port.net,
                rect=port.rect,
            )


def check_instance_overlaps(report: Report, instances: list) -> None:
    """Flag placed instances whose bounding boxes overlap.

    ``instances`` are :class:`~repro.geometry.layout.Instance` records;
    the check runs in parent coordinates via ``placed_bbox``.
    """
    triples = [(0, inst.placed_bbox(), inst) for inst in instances]
    for inst_a, inst_b, rect_a, rect_b in iter_close_pairs(triples, 0):
        if rect_a.overlaps(rect_b):
            report.add(
                "DRC-PLACE-OVERLAP",
                "error",
                f"placed instances {inst_a.name!r} and {inst_b.name!r} "
                f"overlap",
                subject=inst_a.name,
                rect=rect_a,
            )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def run_drc(
    layout: Layout, tech: Technology, absolute_grid: bool = True
) -> Report:
    """Run every design-rule check on one layout.

    Args:
        layout: The layout to check (a primitive cell or a flattened
            block).
        tech: The technology whose rules the layout must satisfy.
        absolute_grid: Check device x-origins against the absolute poly
            grid.  Flattened assemblies pass ``False``: placement
            translates each child by an arbitrary offset, so the x-grid
            phase is a cell-internal property already verified per child
            (every translation-invariant check still runs).

    Returns:
        A :class:`Report` with one violation per broken rule instance.
    """
    report = Report(target=layout.name)
    report.checked_shapes = (
        len(layout.devices) + len(layout.wires) + len(layout.vias)
        + len(layout.ports)
    )
    _check_device_grid(
        report, layout.devices, tech, absolute_grid=absolute_grid
    )
    _check_active_overlap(report, layout.devices)
    _check_wires(report, layout, tech)
    _check_vias(report, layout, tech)
    _check_well(report, layout, tech)
    _check_ports(report, layout, tech)
    return report
