"""Static electromigration (EM) and supply IR-drop analysis.

The generator emits real metal: finger stubs, row straps, trunk rails
and routes, all of which must carry the cell's DC currents forever.
This module audits that claim without a transient simulation, walking
:class:`~repro.geometry.layout.Layout` nets against the per-layer
current-density limits tabulated in :class:`~repro.verify.tech
.AuditTech`:

* ``EM-WIRE-DENSITY`` — a wire group's worst-case DC current per
  micrometre of width exceeds its layer's electromigration limit,
* ``EM-VIA-DENSITY`` — a via group's worst-case current per cut exceeds
  the via layer's per-cut limit,
* ``EM-ROUTE-DENSITY`` — a detailed route bundles too few parallel
  wires for its net's current (flow-level,
  :func:`check_route_currents`),
* ``IR-DROP`` — the worst-case resistive drop along a supply net's
  mesh (rail -> strap -> stub, through the via ladders) exceeds
  ``ir_drop_frac x vdd``.

Current model
-------------

Worst-case net currents come from one of three sources, in order of
preference:

1. An explicit ``currents`` mapping (net -> amps) supplied by the
   caller,
2. a solved DC operating point
   (:meth:`repro.spice.dc.OperatingPoint.net_currents` — the drain
   current of every MOSFET, folded per net as ``max(inflow,
   outflow)``),
3. the *declared budget*: every device conducts
   ``AuditTech.current_per_fin_a`` per fin through drain and source
   (:func:`budget_net_currents`), recovered entirely from the layout's
   device placements and finger-stub ownership tags — no netlist
   needed, which is what lets the audit run default-on inside
   ``generate_layout`` and over flattened assemblies.

Within a net the current is assumed to split equally over the parallel
members of each (layer, role) wire group and over the total cuts of
each via ladder — the design intent of the generator's mesh, and the
conservative static reading once the worst-case net current is already
an upper bound.

All checks are total: a corrupted layout yields violations, never an
exception.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.errors import TechnologyError
from repro.geometry.layout import Layout, Via, Wire
from repro.spice.netlist import is_ground
from repro.tech.pdk import Technology
from repro.verify.diagnostics import Report
from repro.verify.tech import AuditTech

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pnr.detailed import DetailedRoute
    from repro.spice.dc import OperatingPoint

__all__ = [
    "run_emag",
    "budget_net_currents",
    "check_route_currents",
]

#: Wire role emitted for device contact columns.
_STUB_ROLE = "finger_stub"

#: Series order of mesh roles from the port into the devices, for the
#: IR path model: current enters on the trunk rails, crosses the row
#: straps (and their jumpers across the rail region) and descends the
#: finger stubs.
_IR_PATH_ROLES = ("rail", "route", "strap_jumper", "strap", _STUB_ROLE)

#: Roles whose taps are distributed along the wire (straps tap the rail
#: at every row, stubs tap the strap at every column).  A uniformly
#: loaded feeder fed at one end drops ``I x R / 2`` at its far end, so
#: these stages take half their end-to-end resistance.
_DISTRIBUTED_ROLES = frozenset({"rail", "strap"})


def _amps_to_ma(amps: float) -> float:
    return amps * 1e3


def _density_ma_per_um(amps: float, width_nm: int) -> float:
    """DC current density in mA/um for ``amps`` through ``width_nm``."""
    if width_nm <= 0:
        return float("inf")
    return amps * 1e3 / (width_nm * 1e-3)


def _terminal_nets(layout: Layout) -> dict[tuple[str, str], str]:
    """(device, terminal) -> net, recovered from finger-stub owners."""
    out: dict[tuple[str, str], str] = {}
    for wire in layout.wires:
        if wire.role == _STUB_ROLE and "." in wire.owner:
            device, _, terminal = wire.owner.rpartition(".")
            out[(device, terminal)] = wire.net
    return out


def budget_net_currents(
    layout: Layout, audit: AuditTech
) -> dict[str, float]:
    """Declared-budget worst-case current (A) per net, from the layout.

    Every device is assumed to conduct ``current_per_fin_a`` per fin of
    channel (summed over its placed units) through drain and source;
    gates and bulks carry no DC current.  A net's worst-case current is
    ``max(total inflow, total outflow)`` over the device terminals it
    touches — the bound on what its mesh must carry regardless of where
    the current actually leaves (a port, a supply, another device).
    """
    device_amps: dict[str, float] = {}
    for placement in layout.devices:
        device_amps[placement.device] = (
            device_amps.get(placement.device, 0.0)
            + placement.nfin * placement.nf * audit.current_per_fin_a
        )
    inflow: dict[str, float] = {}
    outflow: dict[str, float] = {}
    for (device, terminal), net in sorted(_terminal_nets(layout).items()):
        amps = device_amps.get(device, 0.0)
        if terminal == "s":
            inflow[net] = inflow.get(net, 0.0) + amps
        elif terminal == "d":
            outflow[net] = outflow.get(net, 0.0) + amps
    return {
        net: max(inflow.get(net, 0.0), outflow.get(net, 0.0))
        for net in sorted(set(inflow) | set(outflow))
    }


def _wire_groups(
    layout: Layout,
) -> dict[tuple[str, str, str], list[Wire]]:
    """Wires grouped by (net, layer, role), insertion-ordered."""
    groups: dict[tuple[str, str, str], list[Wire]] = {}
    for wire in layout.wires:
        groups.setdefault((wire.net, wire.layer, wire.role), []).append(wire)
    return groups


def _via_groups(
    layout: Layout,
) -> dict[tuple[str, str, str], list[Via]]:
    """Vias grouped by (net, lower layer, upper layer)."""
    groups: dict[tuple[str, str, str], list[Via]] = {}
    for via in layout.vias:
        key = (via.net, via.lower_layer, via.upper_layer)
        groups.setdefault(key, []).append(via)
    return groups


def _check_wire_em(
    layout: Layout,
    currents: Mapping[str, float],
    audit: AuditTech,
    report: Report,
) -> None:
    """EM-WIRE-DENSITY over every (net, layer, role) wire group."""
    for (net, layer, role), wires in sorted(_wire_groups(layout).items()):
        amps = currents.get(net, 0.0)
        if amps <= 0.0:
            continue
        limits = audit.layer(layer)
        if limits is None:
            continue
        share = amps / len(wires)
        worst = min(wires, key=lambda w: (w.width, w.rect.x0, w.rect.y0))
        density = _density_ma_per_um(share, worst.width)
        if density > limits.em_limit_ma_um:
            report.flag(
                "EM-WIRE-DENSITY",
                f"{role} group on {layer} ({len(wires)} wire(s), "
                f"narrowest {worst.width} nm) carries "
                f"{_amps_to_ma(share):.3f} mA per wire = "
                f"{density:.2f} mA/um; the {layer} limit is "
                f"{limits.em_limit_ma_um:.2f} mA/um",
                layout=layout.name,
                subject=net,
                rect=worst.rect,
            )


def _check_via_em(
    layout: Layout,
    tech: Technology,
    currents: Mapping[str, float],
    audit: AuditTech,
    report: Report,
) -> None:
    """EM-VIA-DENSITY over every (net, layer-pair) via ladder."""
    for (net, lower, upper), vias in sorted(_via_groups(layout).items()):
        amps = currents.get(net, 0.0)
        if amps <= 0.0:
            continue
        try:
            via_layer = tech.stack.via_between(lower, upper)
        except TechnologyError:
            continue  # DRC-VIA-STACK owns non-adjacent via reporting
        limit = audit.via_limit(via_layer.name)
        if limit is None:
            continue
        cuts = sum(v.cuts for v in vias)
        per_cut_ma = _amps_to_ma(amps / cuts)
        if per_cut_ma > limit:
            worst = min(vias, key=lambda v: (v.position.x, v.position.y))
            report.flag(
                "EM-VIA-DENSITY",
                f"{via_layer.name} ladder {lower}->{upper} ({cuts} "
                f"cut(s)) carries {per_cut_ma:.3f} mA per cut; the "
                f"per-cut limit is {limit:.3f} mA",
                layout=layout.name,
                subject=net,
                location=worst.position,
            )


def _group_series_resistance(
    wires: list[Wire], tech: Technology
) -> float:
    """Effective resistance of one parallel wire group (ohm).

    The longest member's end-to-end sheet resistance divided by the
    group size: the equal-split assumption again, taken at the worst
    single span so taper along the wire is absorbed conservatively.
    """
    worst = 0.0
    for wire in wires:
        metal = tech.stack.metal(wire.layer)
        worst = max(
            worst, metal.wire_resistance(float(wire.length), float(wire.width))
        )
    return worst / len(wires)


def _check_ir_drop(
    layout: Layout,
    tech: Technology,
    currents: Mapping[str, float],
    audit: AuditTech,
    report: Report,
) -> None:
    """IR-DROP over every supply (power/ground) net."""
    wire_groups = _wire_groups(layout)
    via_groups = _via_groups(layout)
    budget_v = audit.ir_drop_frac * tech.vdd
    for net in sorted({w.net for w in layout.wires}):
        if not (is_ground(net) or net.endswith("!")):
            continue
        amps = currents.get(net, 0.0)
        if amps <= 0.0:
            continue
        path_ohm = 0.0
        stages: list[str] = []
        for role in _IR_PATH_ROLES:
            members: list[Wire] = []
            for (g_net, _layer, g_role), wires in wire_groups.items():
                if g_net == net and g_role == role:
                    members.extend(wires)
            if not members:
                continue
            stage = _group_series_resistance(members, tech)
            if role in _DISTRIBUTED_ROLES:
                stage *= 0.5
            path_ohm += stage
            stages.append(f"{role}={stage:.1f}")
        for (g_net, lower, upper), vias in sorted(via_groups.items()):
            if g_net != net:
                continue
            try:
                via_layer = tech.stack.via_between(lower, upper)
            except TechnologyError:
                continue
            cuts = sum(v.cuts for v in vias)
            stage = via_layer.array_resistance(cuts)
            path_ohm += stage
            stages.append(f"{via_layer.name}={stage:.1f}")
        if not stages:
            continue
        drop = amps * path_ohm
        if drop > budget_v:
            report.flag(
                "IR-DROP",
                f"supply mesh drops {drop * 1e3:.2f} mV at "
                f"{_amps_to_ma(amps):.3f} mA (path "
                f"{path_ohm:.1f} ohm: {', '.join(stages)}); the budget "
                f"is {budget_v * 1e3:.1f} mV "
                f"({audit.ir_drop_frac:.0%} of vdd)",
                layout=layout.name,
                subject=net,
            )


def run_emag(
    layout: Layout,
    tech: Technology,
    audit: AuditTech | None = None,
    op: "OperatingPoint | None" = None,
    currents: Mapping[str, float] | None = None,
) -> Report:
    """Run the static EM/IR audit on one layout.

    Args:
        layout: The layout to audit (primitive or flattened assembly).
        tech: Technology the layout was generated for.
        audit: Audit table; defaults to
            :meth:`AuditTech.for_technology`.
        op: Optional solved DC operating point whose device names and
            nets match the layout; its
            :meth:`~repro.spice.dc.OperatingPoint.net_currents` replace
            the declared budget.
        currents: Explicit worst-case net currents (A); overrides both
            ``op`` and the budget.

    Returns:
        A report of ``EM-*`` / ``IR-*`` findings; empty when every
        wire, via and supply mesh is within its limits.
    """
    if audit is None:
        audit = AuditTech.for_technology(tech)
    report = Report(target=layout.name)
    report.checked_shapes = len(layout.wires) + len(layout.vias)
    if currents is None:
        if op is not None:
            currents = op.net_currents()
        else:
            currents = budget_net_currents(layout, audit)
    _check_wire_em(layout, currents, audit, report)
    _check_via_em(layout, tech, currents, audit, report)
    _check_ir_drop(layout, tech, currents, audit, report)
    return report


def check_route_currents(
    routes: Mapping[str, "DetailedRoute"],
    currents: Mapping[str, float],
    tech: Technology,
    audit: AuditTech | None = None,
    target: str = "routes",
) -> Report:
    """EM-ROUTE-DENSITY: detailed routes carry their net's current.

    Flow-level companion to :func:`run_emag`: each realized route's
    current splits over its ``n_parallel`` copies, and every bundled
    wire must stay below its layer's EM limit.

    Args:
        routes: Detailed routes keyed by net
            (:func:`repro.pnr.detailed.realize_routes` output).
        currents: Worst-case net currents (A), e.g. from
            :func:`budget_net_currents` over the flattened assembly.
        tech: Technology the routes were realized in.
        audit: Audit table; defaults to
            :meth:`AuditTech.for_technology`.
        target: Report target name.

    Returns:
        A report of ``EM-ROUTE-DENSITY`` findings.
    """
    if audit is None:
        audit = AuditTech.for_technology(tech)
    report = Report(target=target)
    report.checked_shapes = len(routes)
    for net in sorted(routes):
        route = routes[net]
        amps = currents.get(net, 0.0)
        if amps <= 0.0 or not route.wires:
            continue
        limits_map = {
            wire.layer: limits.em_limit_ma_um
            for wire in route.wires
            if (limits := audit.layer(wire.layer)) is not None
        }
        capacity_ma = route.current_capacity_ma(limits_map)
        ma = _amps_to_ma(amps)
        if ma <= capacity_ma:
            continue
        share = amps / max(1, route.n_parallel)
        worst_density = 0.0
        worst_wire: Wire | None = None
        worst_limit = 0.0
        for wire in route.wires:
            limit = limits_map.get(wire.layer)
            if limit is None:
                continue
            density = _density_ma_per_um(share, wire.width)
            if density - limit > worst_density - worst_limit:
                worst_density, worst_limit, worst_wire = (
                    density, limit, wire,
                )
        if worst_wire is not None:
            needed = max(
                route.n_parallel + 1,
                -int(-ma * route.n_parallel // capacity_ma)
                if capacity_ma > 0.0
                else route.n_parallel + 1,
            )
            report.flag(
                "EM-ROUTE-DENSITY",
                f"route bundles {route.n_parallel} wire(s) with "
                f"{capacity_ma:.3f} mA capacity; {worst_wire.layer} "
                f"segment ({worst_wire.width} nm) carries "
                f"{worst_density:.2f} mA/um against a "
                f"{worst_limit:.2f} mA/um limit — needs >= {needed} "
                f"parallel wires",
                layout=target,
                subject=net,
                rect=worst_wire.rect,
            )
    return report
