"""Electrical rule checking (ERC) over flat :class:`~repro.spice.netlist.Circuit`s.

Static electrical sanity, checked in microseconds before any SPICE
budget is spent: floating gates, nets with no DC path to a boundary,
zero-impedance shorts between rails, bulk polarity against device type,
dangling ports and degenerate elements.  The checks are purely
structural — no matrix is built — so they run on schematic references,
extracted netlists and testbenches alike.

Net conventions (shared with the primitive generator):

* ground is any spelling :func:`repro.spice.netlist.is_ground` accepts;
* supply rails end with ``"!"`` (e.g. ``vdd!``) and are assumed driven;
* declared ``Circuit.ports`` are driven from outside.

Those three classes form the *boundary*: DC reachability starts there.

Rule IDs are registered in :mod:`repro.verify.rules` (``ERC-*``); see
``docs/verification.md`` for the catalog.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.netlist import Circuit, is_ground
from repro.spice.waveforms import Dc
from repro.verify.diagnostics import Report

__all__ = [
    "run_erc",
    "dc_terminal_kinds",
    "dc_conducting_pairs",
    "zero_impedance_pairs",
    "is_supply",
]

#: Terminal kinds, by decreasing ability to set a net's DC voltage.
#:
#: ``conducting`` terminals carry DC current at finite impedance (they
#: propagate drive onto the net); ``gate``/``sense`` terminals only
#: observe; ``blocking`` terminals pass no DC current; ``bulk`` is the
#: MOS body tie.
TERMINAL_KINDS = ("conducting", "gate", "bulk", "blocking", "sense")


def is_supply(net: str) -> bool:
    """True for supply rails: nets ending in ``"!"`` that are not ground."""
    return net.endswith("!") and not is_ground(net)


def dc_terminal_kinds(elem: Element) -> tuple[tuple[str, str], ...]:
    """``(net, kind)`` for each terminal of ``elem``.

    The kind classifies what the terminal does to the net's DC operating
    point — see :data:`TERMINAL_KINDS`.
    """
    if isinstance(elem, (Resistor, Inductor)):
        return ((elem.a, "conducting"), (elem.b, "conducting"))
    if isinstance(elem, Capacitor):
        return ((elem.a, "blocking"), (elem.b, "blocking"))
    if isinstance(elem, VoltageSource):
        return ((elem.plus, "conducting"), (elem.minus, "conducting"))
    if isinstance(elem, CurrentSource):
        return ((elem.a, "blocking"), (elem.b, "blocking"))
    if isinstance(elem, Vcvs):
        return (
            (elem.plus, "conducting"),
            (elem.minus, "conducting"),
            (elem.ctrl_plus, "sense"),
            (elem.ctrl_minus, "sense"),
        )
    if isinstance(elem, Vccs):
        return (
            (elem.a, "blocking"),
            (elem.b, "blocking"),
            (elem.ctrl_plus, "sense"),
            (elem.ctrl_minus, "sense"),
        )
    # Mosfet: channel terminals conduct, the gate observes, bulk ties.
    return (
        (elem.d, "conducting"),
        (elem.g, "gate"),
        (elem.b, "bulk"),
        (elem.s, "conducting"),
    )


def dc_conducting_pairs(elem: Element) -> tuple[tuple[str, str], ...]:
    """Node pairs joined by a finite-impedance DC path through ``elem``."""
    if isinstance(elem, (Resistor, Inductor)):
        return ((elem.a, elem.b),)
    if isinstance(elem, VoltageSource):
        return ((elem.plus, elem.minus),)
    if isinstance(elem, Vcvs):
        return ((elem.plus, elem.minus),)
    if isinstance(elem, Mosfet):
        return ((elem.d, elem.s),)
    # Capacitors, current sources and VCCS outputs block or are
    # infinite-impedance at DC.
    return ()


def zero_impedance_pairs(elem: Element) -> tuple[tuple[str, str], ...]:
    """Node pairs ``elem`` shorts at DC (inductors, 0 V DC sources)."""
    if isinstance(elem, Inductor):
        return ((elem.a, elem.b),)
    if isinstance(elem, VoltageSource):
        wave = elem.waveform
        if isinstance(wave, Dc) and wave.dc_value == 0.0:
            return ((elem.plus, elem.minus),)
    return ()


class _NetUnion:
    """Union-find over net names (path halving, union by size)."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._size: dict[str, int] = {}

    def find(self, net: str) -> str:
        parent = self._parent
        if net not in parent:
            parent[net] = net
            self._size[net] = 1
            return net
        while parent[net] != net:
            parent[net] = parent[parent[net]]
            net = parent[net]
        return net

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]


def _canonical(net: str) -> str:
    """Fold every ground spelling onto one node name."""
    return "0" if is_ground(net) else net


def _boundary_nets(circuit: Circuit, nets: Iterable[str]) -> set[str]:
    """Nets assumed externally driven: ports, supplies and ground."""
    boundary = {"0"}
    boundary.update(_canonical(p) for p in circuit.ports)
    boundary.update(n for n in nets if is_supply(n))
    return boundary


def run_erc(circuit: Circuit) -> Report:
    """Run every electrical rule check on a flat circuit.

    Returns a :class:`Report` whose ``checked_shapes`` counts elements
    plus distinct nets.  Never raises on circuit content — findings are
    violations, not exceptions.
    """
    report = Report(target=circuit.name)

    # Net -> [(element, kind)] attachment map, ground spellings folded.
    attachments: dict[str, list[tuple[Element, str]]] = {}
    for elem in circuit.elements:
        for net, kind in dc_terminal_kinds(elem):
            attachments.setdefault(_canonical(net), []).append((elem, kind))

    nets = set(attachments)
    boundary = _boundary_nets(circuit, nets)
    report.checked_shapes = len(circuit) + len(nets)

    _check_degenerate(circuit, report)
    _check_supply_shorts(circuit, report)
    _check_bulk_polarity(circuit, report)
    _check_dangling_ports(circuit, nets, report)
    _check_floating_gates(circuit, attachments, boundary, report)
    _check_reachability(circuit, attachments, boundary, report)
    _check_dangling_nets(attachments, boundary, report)
    return report


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _check_degenerate(circuit: Circuit, report: Report) -> None:
    """ERC-SELF-LOOP / ERC-ZERO-VALUE: no-op or placeholder elements."""
    for elem in circuit.elements:
        if isinstance(elem, (Resistor, Capacitor, Inductor, CurrentSource)):
            if _canonical(elem.a) == _canonical(elem.b):
                report.flag(
                    "ERC-SELF-LOOP",
                    f"{type(elem).__name__.lower()} {elem.name} has both "
                    f"terminals on net {elem.a!r}",
                    subject=elem.name,
                )
        if isinstance(elem, Capacitor) and elem.value == 0.0:
            report.flag(
                "ERC-ZERO-VALUE",
                f"capacitor {elem.name} has zero capacitance",
                subject=elem.name,
            )


def _check_supply_shorts(circuit: Circuit, report: Report) -> None:
    """ERC-SUPPLY-SHORT: zero-impedance paths merging distinct rails."""
    edges: list[tuple[str, str, str]] = []
    for elem in circuit.elements:
        for a, b in zero_impedance_pairs(elem):
            edges.append((_canonical(a), _canonical(b), elem.name))
        if isinstance(elem, VoltageSource):
            if _canonical(elem.plus) == _canonical(elem.minus):
                report.flag(
                    "ERC-SUPPLY-SHORT",
                    f"voltage source {elem.name} shorts net {elem.plus!r} "
                    f"to itself",
                    subject=elem.name,
                )

    union = _NetUnion()
    for a, b, _ in edges:
        union.union(a, b)

    components: dict[str, set[str]] = {}
    causes: dict[str, set[str]] = {}
    for a, b, name in edges:
        root = union.find(a)
        members = components.setdefault(root, set())
        members.update((a, b))
        causes.setdefault(root, set()).add(name)
    for root in sorted(components):
        rails = sorted(
            n for n in components[root] if n == "0" or is_supply(n)
        )
        if len(rails) >= 2:
            through = ", ".join(sorted(causes[root]))
            report.flag(
                "ERC-SUPPLY-SHORT",
                f"zero-impedance path merges rails {rails} "
                f"(through {through})",
                subject=rails[-1],
            )


def _check_bulk_polarity(circuit: Circuit, report: Report) -> None:
    """ERC-BULK-POLARITY: NMOS bulk on a supply, PMOS bulk on ground."""
    for mos in circuit.mosfets():
        bulk = _canonical(mos.b)
        if mos.card.polarity > 0 and is_supply(bulk):
            report.flag(
                "ERC-BULK-POLARITY",
                f"NMOS {mos.name} ties its bulk to supply {mos.b!r}; "
                f"p-well must tie to ground",
                subject=mos.name,
            )
        elif mos.card.polarity < 0 and bulk == "0":
            report.flag(
                "ERC-BULK-POLARITY",
                f"PMOS {mos.name} ties its bulk to ground; n-well must "
                f"tie to a supply",
                subject=mos.name,
            )


def _check_dangling_ports(
    circuit: Circuit, nets: set[str], report: Report
) -> None:
    """ERC-DANGLING-PORT: declared ports no element touches."""
    for port in circuit.ports:
        if _canonical(port) not in nets:
            report.flag(
                "ERC-DANGLING-PORT",
                f"port {port!r} touches no element terminal",
                subject=port,
            )


def _check_floating_gates(
    circuit: Circuit,
    attachments: dict[str, list[tuple[Element, str]]],
    boundary: set[str],
    report: Report,
) -> None:
    """ERC-FLOAT-GATE: gate nets with no DC drive attached."""
    for mos in circuit.mosfets():
        gate = _canonical(mos.g)
        if gate in boundary:
            continue
        kinds = {kind for _, kind in attachments.get(gate, [])}
        if "conducting" not in kinds:
            report.flag(
                "ERC-FLOAT-GATE",
                f"gate of {mos.name} on net {mos.g!r} has no DC drive "
                f"(only {', '.join(sorted(kinds)) or 'nothing'} attached)",
                subject=mos.name,
            )


def _check_reachability(
    circuit: Circuit,
    attachments: dict[str, list[tuple[Element, str]]],
    boundary: set[str],
    report: Report,
) -> None:
    """ERC-UNDRIVEN: nets with no DC path to any boundary net.

    Breadth-first search from the boundary across finite-impedance DC
    edges.  Pure observer nets (only gates/sense pins attached) are left
    to ERC-FLOAT-GATE, which names the affected device.
    """
    adjacency: dict[str, set[str]] = {}
    for elem in circuit.elements:
        for a, b in dc_conducting_pairs(elem):
            a, b = _canonical(a), _canonical(b)
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)

    reached = set(boundary)
    queue = deque(boundary)
    while queue:
        net = queue.popleft()
        for neighbor in adjacency.get(net, ()):
            if neighbor not in reached:
                reached.add(neighbor)
                queue.append(neighbor)

    for net in sorted(attachments):
        if net in reached:
            continue
        kinds = {kind for _, kind in attachments[net]}
        if kinds <= {"gate", "sense"}:
            continue  # ERC-FLOAT-GATE territory
        report.flag(
            "ERC-UNDRIVEN",
            f"net {net!r} has no DC path to any port, supply or ground",
            subject=net,
        )


def _check_dangling_nets(
    attachments: dict[str, list[tuple[Element, str]]],
    boundary: set[str],
    report: Report,
) -> None:
    """ERC-DANGLING-NET: internal nets touching exactly one terminal."""
    for net in sorted(attachments):
        if net in boundary:
            continue
        if len(attachments[net]) == 1:
            elem, _ = attachments[net][0]
            report.flag(
                "ERC-DANGLING-NET",
                f"net {net!r} touches only one terminal (of {elem.name})",
                subject=net,
            )
