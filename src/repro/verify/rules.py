"""The shared rule registry and the waiver (baseline) mechanism.

Every static check in this package — DRC (``DRC-``), connectivity
(``CONN-``), electrical-rule checking (``ERC-``) and constraint/symmetry
analysis (``CONST-``) — emits violations under a **stable rule ID**.
This module is the single source of truth for those IDs: each rule
registers a :class:`RuleDef` carrying its default severity, its
category, a one-line description of the invariant and a *fix hint*.

Registering the same ID twice raises at import time, which is the
collision guard that keeps the catalog unique as checks are added
across modules; ``tests/verify/test_rules_registry.py`` additionally
asserts every registered rule is documented in
``docs/verification.md``.

Waivers
-------

A waiver file (``.reprolint.toml`` by convention) suppresses *known*
deviations explicitly instead of silencing a rule globally::

    [[waive]]
    rule = "DRC-VIA-ENCLOSURE"
    layout = "*"                # fnmatch pattern on the layout name
    subject = "tail*"           # fnmatch pattern on the subject
    reason = "generator stacks redundant cuts; rail mesh returns"

:meth:`WaiverSet.load` parses the file (stdlib ``tomllib``; a tiny
line-based fallback keeps Python 3.10 working), and
:meth:`~repro.verify.diagnostics.Report.apply_waivers` marks matching
violations as waived — they stay in the report (and in the JSON
output, flagged) but no longer fail verification.  A waiver naming an
unregistered rule is an error: baselines must not rot silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from fnmatch import fnmatchcase
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.errors import VerificationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.verify.diagnostics import Violation

#: Rule categories, keyed by ID prefix.
CATEGORIES: Mapping[str, str] = {
    "DRC": "design rules",
    "CONN": "connectivity (LVS-lite)",
    "ERC": "electrical rules",
    "CONST": "constraint / symmetry",
    "TOPO": "topology recognition",
    "SYMG": "geometric symmetry realization",
    "EM": "electromigration (static)",
    "IR": "supply IR drop (static)",
    "ANT": "antenna / charge collection",
    "DEN": "metal density",
    "LINT": "lint meta-diagnostics",
}


@dataclass(frozen=True)
class RuleDef:
    """One registered static-analysis rule.

    Attributes:
        id: Stable identifier, e.g. ``"ERC-FLOAT-GATE"``.  IDs are API.
        severity: Default severity (``"error"`` or ``"warning"``).
        category: Registry category key (``"DRC"``/``"CONN"``/``"ERC"``/
            ``"CONST"``), derived from the ID prefix.
        description: One-line statement of the invariant the rule checks.
        fix_hint: Short actionable hint shown alongside violations.
    """

    id: str
    severity: str
    category: str
    description: str
    fix_hint: str = ""


_REGISTRY: dict[str, RuleDef] = {}


def register_rule(
    rule_id: str,
    severity: str,
    description: str,
    fix_hint: str = "",
) -> RuleDef:
    """Register a rule; raises at import time on a duplicate ID.

    The category is derived from the ID prefix (the part before the
    first ``-``), which must be one of :data:`CATEGORIES`.
    """
    if rule_id in _REGISTRY:
        raise VerificationError(
            f"duplicate rule registration: {rule_id!r} is already "
            f"registered ({_REGISTRY[rule_id].description!r})"
        )
    prefix = rule_id.split("-", 1)[0]
    if prefix not in CATEGORIES:
        raise VerificationError(
            f"rule {rule_id!r} has unknown category prefix {prefix!r}; "
            f"known prefixes: {', '.join(CATEGORIES)}"
        )
    if severity not in ("warning", "error"):
        raise VerificationError(
            f"rule {rule_id!r}: severity must be 'warning' or 'error', "
            f"got {severity!r}"
        )
    rule = RuleDef(
        id=rule_id,
        severity=severity,
        category=prefix,
        description=description,
        fix_hint=fix_hint,
    )
    _REGISTRY[rule_id] = rule
    return rule


def rule(rule_id: str) -> RuleDef:
    """Look up a registered rule by ID."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise VerificationError(
            f"unknown rule ID {rule_id!r}; registered rules: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def is_registered(rule_id: str) -> bool:
    """True when ``rule_id`` is in the registry."""
    return rule_id in _REGISTRY


def all_rules() -> list[RuleDef]:
    """Every registered rule, sorted by ID."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def rules_in_category(prefix: str) -> list[RuleDef]:
    """Registered rules of one category prefix, sorted by ID."""
    return [r for r in all_rules() if r.category == prefix]


# ---------------------------------------------------------------------------
# the catalog
# ---------------------------------------------------------------------------
# Rules are declared centrally so the collision guard sees every ID no
# matter which check modules are imported; the check modules reference
# them through Report.flag(rule_id, ...), which takes the severity from
# here.  See docs/verification.md for the rendered catalog.

# -- DRC --------------------------------------------------------------------
register_rule(
    "DRC-FIN-PITCH", "error",
    "active height equals nfin x fin_pitch",
    "regenerate the unit with an integral fin count",
)
register_rule(
    "DRC-POLY-PITCH", "error",
    "active width equals nf x poly_pitch and x-origin sits on the poly grid",
    "snap the unit origin to the contacted-poly grid",
)
register_rule(
    "DRC-FINGER-FOOTPRINT", "error",
    "unit footprint matches DesignRules.finger_footprint(nf) incl. dummies",
    "place the dummy fingers the rules require on both sides",
)
register_rule(
    "DRC-ACTIVE-OVERLAP", "error",
    "no two active areas overlap",
    "respace the rows/columns by at least one diffusion break",
)
register_rule(
    "DRC-WIRE-WIDTH", "error",
    "every wire meets its layer's min_width",
    "widen the wire to the layer minimum",
)
register_rule(
    "DRC-WIRE-SPACING", "error",
    "routing wires of different nets keep pitch - min_width",
    "move the wires one routing track apart",
)
register_rule(
    "DRC-VIA-STACK", "error",
    "vias join adjacent metals only",
    "split the via into a chain through every intermediate layer",
)
register_rule(
    "DRC-VIA-CUTS", "error",
    "every via has at least one cut",
    "give the via a positive cut count",
)
register_rule(
    "DRC-VIA-ENCLOSURE", "warning",
    "via landing point covered by same-net metal on each side",
    "extend the landing metal or drop the redundant cut",
)
register_rule(
    "DRC-WELL-ENCLOSURE", "error",
    "well encloses every device by well_enclosure",
    "expand the well rectangle by the enclosure margin",
)
register_rule(
    "DRC-WELL-MISSING", "warning",
    "devices present but no well rectangle",
    "derive the well from the device bounding box",
)
register_rule(
    "DRC-PORT-BBOX", "error",
    "ports lie inside the cell geometry bounding box",
    "move the port onto cell geometry",
)
register_rule(
    "DRC-LAYER-UNKNOWN", "error",
    "wires and ports reference layers the stack knows",
    "use a metal defined by the technology stack",
)
register_rule(
    "DRC-PLACE-OVERLAP", "error",
    "placed instances of an assembly do not overlap",
    "respace the placement or shrink the chosen variants",
)

# -- connectivity -----------------------------------------------------------
register_rule(
    "CONN-SHORT", "error",
    "wires of different nets never overlap on one conducting plane",
    "reroute one of the nets off the shared track",
)
register_rule(
    "CONN-FLOAT-NET", "error",
    "each net is one electrical island",
    "bridge the islands with a strap or via chain",
)
register_rule(
    "CONN-VIA-FLOAT", "error",
    "every via touches metal of its net",
    "land the via on same-net metal or delete it",
)
register_rule(
    "CONN-PORT-OPEN", "error",
    "every port sits on metal of its net",
    "move the port onto its net's metal",
)
register_rule(
    "CONN-TERM-MISSING", "error",
    "every device terminal has contact stubs",
    "emit finger stubs for the terminal",
)
register_rule(
    "CONN-TERM-NET", "error",
    "terminal stubs carry the net the schematic assigns",
    "rewire the stub to the schematic net",
)
register_rule(
    "CONN-TERM-UNREACHED", "error",
    "terminal stubs reach their net's port geometry",
    "connect the stub into the net's strap/rail mesh",
)
register_rule(
    "CONN-PORT-MISSING", "warning",
    "spec port nets that are wired also have a port shape",
    "emit a port rectangle for the net",
)

# -- ERC (electrical rules over netlists) -----------------------------------
register_rule(
    "ERC-FLOAT-GATE", "error",
    "every MOS gate net has a DC drive (a conducting terminal, a port "
    "or a supply)",
    "tie the gate to a driver, a bias source or declare it a port",
)
register_rule(
    "ERC-UNDRIVEN", "error",
    "every net reaches a port, supply or ground through DC-conducting "
    "elements",
    "add a DC path (resistor, channel, source) or remove the island",
)
register_rule(
    "ERC-SUPPLY-SHORT", "error",
    "no zero-impedance path merges a supply net with ground (or a "
    "source with itself)",
    "remove the shorting inductor/0V source between the rails",
)
register_rule(
    "ERC-BULK-POLARITY", "error",
    "NMOS bulks never tie to a supply rail, PMOS bulks never tie to "
    "ground",
    "tie NMOS bulks to ground/p-well and PMOS bulks to the n-well "
    "supply",
)
register_rule(
    "ERC-DANGLING-PORT", "error",
    "every declared port touches at least one element terminal",
    "connect the port or drop it from the port list",
)
register_rule(
    "ERC-DANGLING-NET", "warning",
    "no internal net touches exactly one element terminal",
    "connect the dangling terminal or fold the net away",
)
register_rule(
    "ERC-SELF-LOOP", "warning",
    "two-terminal passives and current sources never loop onto one net",
    "delete the no-op element or rewire one terminal",
)
register_rule(
    "ERC-ZERO-VALUE", "warning",
    "passives carry a nonzero value (a 0 F capacitor is a stale "
    "placeholder)",
    "give the element a real value or remove it",
)

# -- constraint / symmetry analysis -----------------------------------------
register_rule(
    "CONST-MATCH-SIZE", "error",
    "matched devices share unit (nfin, nf), dummies and unit counts "
    "proportional to their multiplicity",
    "regenerate the matched group from one shared unit sizing",
)
register_rule(
    "CONST-SYM-AXIS", "error",
    "two-device matched groups under ABAB/ABBA/CC2D mirror about the "
    "cell's vertical axis row by row",
    "restore the pattern's unit order (swap the offending units back)",
)
register_rule(
    "CONST-CENTROID", "error",
    "common-centroid patterns (ABBA/CC2D, even counts) place matched "
    "devices on one shared centroid",
    "re-place the units so per-device centroids coincide",
)
register_rule(
    "CONST-MATCH-LDE", "error",
    "under common-centroid patterns matched devices see equivalent LDE "
    "environments (Vth shift, mobility)",
    "equalise dummies/well margins so the LDE contexts cancel",
)
register_rule(
    "CONST-SYM-WIRES", "error",
    "symmetric net pairs carry identical wire meshes (strap counts, "
    "shape counts per layer and role)",
    "give both nets of the pair the same WireConfig strap count",
)
register_rule(
    "CONST-ROUTE-PARALLEL", "error",
    "matched detailed routes realize equal parallel-wire counts "
    "consistent with the reconciled budgets",
    "re-run reconciliation so matched nets share one wire count",
)

# -- TOPO: netlist topology recognition (repro.ingest) ----------------------

register_rule(
    "TOPO-UNCOVERED", "warning",
    "every MOS device belongs to a recognized primitive; unclaimed "
    "devices receive no matching/symmetry constraints",
    "add the structure to the pattern library or waive the residue",
)
register_rule(
    "TOPO-AMBIGUOUS", "warning",
    "pattern matches do not compete for the same device; overlapping "
    "same-priority candidates are resolved by canonical order",
    "check the reported alternative grouping; restructure or waive",
)
register_rule(
    "TOPO-ASYM-SIZE", "error",
    "devices recognized as a matched group share one unit sizing "
    "(nfin, nf); only the multiplier m may differ, and only for "
    "ratioed mirrors",
    "equalize the unit device (nfin, nf) across the matched group",
)
register_rule(
    "TOPO-NO-GENERATOR", "warning",
    "each recognized primitive maps onto a primitives/library.py "
    "generator so the flow can optimize it",
    "add a library family for the structure or treat it as residue",
)
register_rule(
    "TOPO-GEN-FAIL", "warning",
    "emitted constraint specs are realizable by the cell generator "
    "with the parsed device sizing",
    "re-size the devices to an (nfin, nf, m) the generator supports",
)
register_rule(
    "TOPO-NO-DEVICES", "warning",
    "an ingested netlist contains at least one MOS device to recognize",
    "check the netlist: only passives/sources were found",
)

# -- SYMG: geometric constraint realization (repro.verify.symmetry_geo) -----
register_rule(
    "SYMG-PLACE", "error",
    "each mirrored device pair's placements reflect about the detected "
    "mirror axis within placement tolerance",
    "re-place the offending units symmetrically about the pair axis",
)
register_rule(
    "SYMG-AXIS", "error",
    "all mirrored pairs of one matched group agree on a single "
    "cell-wide mirror axis",
    "align the per-row mirror axes (equalize row unit counts/order)",
)
register_rule(
    "SYMG-WIRE-LEN", "error",
    "symmetric net pairs carry matching total wire length per layer "
    "in the routing mesh (straps, jumpers, rails, routes)",
    "equalize the strap/rail spans of the two nets (same WireConfig)",
)
register_rule(
    "SYMG-VIA-COUNT", "error",
    "symmetric net pairs carry identical via counts per via layer pair",
    "equalize the via ladders of the two nets",
)
register_rule(
    "SYMG-ORIENT", "error",
    "mirrored device pairs realize one consistent orientation relation "
    "(both flipped or both unflipped across every pair)",
    "flip the offending placement to match its mirror partner",
)

# -- EM: static electromigration (repro.verify.emag) ------------------------
register_rule(
    "EM-WIRE-DENSITY", "error",
    "every wire's worst-case DC current per unit width stays below its "
    "layer's electromigration limit (verify/tech.py AuditTech)",
    "widen the wire, add parallel straps, or lower the current budget",
)
register_rule(
    "EM-VIA-DENSITY", "error",
    "every via's worst-case DC current per cut stays below the via "
    "layer's per-cut limit",
    "add redundant via cuts or spread the current over more vias",
)
register_rule(
    "EM-ROUTE-DENSITY", "error",
    "detailed routes bundle enough parallel wires for their net's "
    "worst-case current at the layer EM limit",
    "raise the route's parallel-wire count (WireConfig/reconciler)",
)

# -- IR: static supply IR drop (repro.verify.emag) --------------------------
register_rule(
    "IR-DROP", "error",
    "worst-case resistive drop from a supply port to the farthest "
    "device terminal stays below ir_drop_frac x vdd",
    "add rail straps / via cuts on the supply mesh or widen the rails",
)

# -- ANT: antenna (charge collection) (repro.verify.antenna) ----------------
register_rule(
    "ANT-RATIO", "error",
    "per metal layer, the charge-collecting metal area of a net stays "
    "below antenna_max_ratio x the connected gate area",
    "break the antenna with a jumper to a higher layer or add gate area",
)

# -- DEN: metal density windows (repro.verify.antenna) ----------------------
register_rule(
    "DEN-WINDOW-MAX", "error",
    "no density window on a routing layer exceeds the layer's "
    "max_density ceiling (CMP dishing risk)",
    "spread the mesh or thin the straps inside the dense window",
)
register_rule(
    "DEN-WINDOW-MIN", "warning",
    "density windows on layers the cell uses stay above the layer's "
    "min_density floor (fill would be required at tapeout)",
    "accept (fill is a tapeout step) or extend the mesh into the window",
)

# -- LINT: meta-diagnostics about the lint configuration itself -------------
register_rule(
    "LINT-WAIVER-EXPIRED", "warning",
    "waivers with an 'expires' date are renewed before they lapse; an "
    "expired waiver no longer suppresses its violations",
    "re-justify and extend the waiver's expires date, or fix the cause",
)


# ---------------------------------------------------------------------------
# waivers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Waiver:
    """One explicit suppression of a known deviation.

    Attributes:
        rule: Exact rule ID the waiver applies to (must be registered).
        layout: fnmatch pattern on the violation's layout name.
        subject: fnmatch pattern on the violation's subject.
        reason: Why the deviation is acceptable (required — a waiver
            without a reason is a silenced rule, not a baseline).
        expires: Optional ``YYYY-MM-DD`` date after which the waiver no
            longer suppresses anything; an expired waiver is itself
            reported as a ``LINT-WAIVER-EXPIRED`` warning so baselines
            cannot rot silently.  Empty means the waiver never expires.
    """

    rule: str
    layout: str = "*"
    subject: str = "*"
    reason: str = ""
    expires: str = ""

    def __post_init__(self) -> None:
        if not is_registered(self.rule):
            raise VerificationError(
                f"waiver names unregistered rule {self.rule!r}; "
                f"baselines must reference catalog rules"
            )
        if not self.reason:
            raise VerificationError(
                f"waiver for {self.rule!r} has no reason; explain why "
                f"the deviation is acceptable"
            )
        if self.expires:
            try:
                date.fromisoformat(self.expires)
            except ValueError as exc:
                raise VerificationError(
                    f"waiver for {self.rule!r} has malformed expires "
                    f"date {self.expires!r}; use YYYY-MM-DD"
                ) from exc

    def is_expired(self, today: date) -> bool:
        """True when this waiver has an ``expires`` date before ``today``."""
        if not self.expires:
            return False
        return date.fromisoformat(self.expires) < today

    def matches(self, violation: "Violation") -> bool:
        """True when this waiver covers ``violation`` (ignoring expiry)."""
        return (
            violation.rule == self.rule
            and fnmatchcase(violation.layout, self.layout)
            and fnmatchcase(violation.subject, self.subject)
        )


@dataclass
class WaiverSet:
    """An ordered collection of waivers loaded from a baseline file."""

    waivers: list[Waiver] = field(default_factory=list)
    source: str = ""

    def __len__(self) -> int:
        return len(self.waivers)

    def __iter__(self) -> Iterator[Waiver]:
        return iter(self.waivers)

    def find(self, violation: "Violation") -> Waiver | None:
        """The first waiver covering ``violation``, if any."""
        for waiver in self.waivers:
            if waiver.matches(violation):
                return waiver
        return None

    @classmethod
    def load(cls, path: str | Path) -> "WaiverSet":
        """Parse a ``.reprolint.toml`` baseline file.

        The file holds ``[[waive]]`` tables with ``rule`` (required),
        ``reason`` (required), optional ``layout``/``subject`` fnmatch
        patterns and an optional ``expires = "YYYY-MM-DD"`` date.
        Unknown keys and unregistered rules raise.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise VerificationError(
                f"cannot read waiver file {path}: {exc}"
            ) from exc
        data = _parse_toml(text, str(path))
        entries = data.get("waive", [])
        if not isinstance(entries, list):
            raise VerificationError(
                f"{path}: 'waive' must be an array of tables ([[waive]])"
            )
        waivers: list[Waiver] = []
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise VerificationError(
                    f"{path}: waive entry {i} is not a table"
                )
            unknown = set(entry) - {
                "rule", "layout", "subject", "reason", "expires",
            }
            if unknown:
                raise VerificationError(
                    f"{path}: waive entry {i} has unknown keys "
                    f"{sorted(unknown)}"
                )
            if "rule" not in entry:
                raise VerificationError(
                    f"{path}: waive entry {i} is missing 'rule'"
                )
            expires = entry.get("expires", "")
            if isinstance(expires, date):  # tomllib parses bare dates
                expires = expires.isoformat()
            waivers.append(
                Waiver(
                    rule=str(entry["rule"]),
                    layout=str(entry.get("layout", "*")),
                    subject=str(entry.get("subject", "*")),
                    reason=str(entry.get("reason", "")),
                    expires=str(expires),
                )
            )
        return cls(waivers=waivers, source=str(path))


def _parse_toml(text: str, source: str) -> dict[str, list[dict[str, Any]]]:
    """Parse the waiver TOML; stdlib on 3.11+, minimal fallback on 3.10."""
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - Python 3.10 path
        return _parse_waiver_lines(text)
    try:
        raw = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise VerificationError(f"{source}: invalid TOML: {exc}") from exc
    out: dict[str, list[dict[str, Any]]] = {}
    waive = raw.get("waive", [])
    if isinstance(waive, list):
        out["waive"] = [e for e in waive if isinstance(e, dict)]
    else:
        out["waive"] = waive  # type: ignore[assignment]
    return out


def _parse_waiver_lines(text: str) -> dict[str, list[dict[str, Any]]]:
    """Line-based subset parser: [[waive]] tables of key = "value"."""
    entries: list[dict[str, str]] = []
    current: dict[str, str] | None = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line == "[[waive]]":
            current = {}
            entries.append(current)
            continue
        if "=" in line and current is not None:
            key, _, value = line.partition("=")
            current[key.strip()] = value.strip().strip('"').strip("'")
    return {"waive": entries}
