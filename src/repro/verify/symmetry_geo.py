"""Geometric constraint-realization audit (mirror symmetry in metal).

:mod:`repro.verify.constraints` checks the *declared* analog intent —
unit counts, centroids, mesh shape counts.  This module closes the
remaining gap: does the **emitted geometry** actually realize the
mirror the pattern promises?  It re-detects the mirror axis from the
placed units of each matched pair and audits placement, orientation and
the symmetric nets' metal against it:

* ``SYMG-PLACE`` — a unit's reflection about its row's detected axis
  does not coincide with its mirror partner,
* ``SYMG-AXIS`` — the per-row mirror axes of the matched stack do not
  agree on one cell-wide axis (rows staggered against each other pass
  the per-row CONST check but break the global mirror),
* ``SYMG-ORIENT`` — mirrored pairs realize inconsistent orientation
  relations (one pair flips across the axis, another does not),
* ``SYMG-WIRE-LEN`` — a symmetric net pair's total mesh wire length
  per (layer, role) diverges beyond tolerance,
* ``SYMG-VIA-COUNT`` — a symmetric net pair's via-ladder cut counts
  per layer pair differ.

Like the constraint analyzer, every check is gated on the pattern the
layout *declares* (``layout.metadata["pattern"]``): only the mirror
patterns (:data:`~repro.verify.constraints.MIRROR_PATTERNS`) promise
any of this, so clustered AABB layouts are never punished.

Tolerances: placements reflect exactly in integer nanometres, so the
positional tolerance is the shared :data:`~repro.verify.constraints
.POSITION_TOL`.  The metal comparison covers the *shared trunk* of the
mesh — rails, the jumpers across the rail region, and routes — which
is structurally identical for both nets of a pair.  Row straps and
finger stubs are excluded by construction: a strap's left edge follows
its own net's first stub column, so any interleaved pattern (A's
columns flank B's) skews strap spans legitimately, and stub counts
follow diffusion parity — both asymmetries CONST-SYM-WIRES already
bounds at the count level.  For the same reason via ladders on the
device metal (stub contacts) are excluded from the cut-count
comparison.
"""

from __future__ import annotations

from repro.cellgen.generator import CellSpec
from repro.geometry.layout import DevicePlacement, Layout
from repro.tech.pdk import Technology
from repro.verify.constraints import MIRROR_PATTERNS, POSITION_TOL
from repro.verify.diagnostics import Report

__all__ = [
    "run_symmetry_geo",
    "LEN_RTOL",
    "LEN_ATOL_NM",
]

#: Relative tolerance on summed trunk wire length per (layer, role).
#: Trunk shapes differ only by track assignment, never by span, so the
#: bound is tight.
LEN_RTOL = 0.05

#: Absolute slack (nm) under which length differences are ignored — a
#: single routing-track offset must never fire on a small cell.
LEN_ATOL_NM = 200

#: Wire roles compared per symmetric net pair: the shared trunk.  Row
#: straps and finger stubs are excluded (see the module docstring).
_TRUNK_ROLES = ("rail", "route", "strap_jumper")


def run_symmetry_geo(
    layout: Layout, spec: CellSpec, tech: Technology | None = None
) -> Report:
    """Run the geometric symmetry-realization audit on one layout.

    Args:
        layout: A generated (or corrupted) primitive layout; the
            declared pattern is read from ``layout.metadata``.
        spec: The cell spec declaring the matched group and symmetric
            net pairs.
        tech: Optional technology; names the device metal whose via
            ladders (stub contacts) the cut-count comparison skips.
            Defaults to ``"M1"``.

    Returns:
        A report of ``SYMG-*`` findings; empty for layouts that honor
        their declared mirror pattern (or declare none).
    """
    report = Report(target=layout.name)
    pattern = str(layout.metadata.get("pattern", "")).upper()
    if pattern not in MIRROR_PATTERNS:
        return report

    matched = list(spec.matched_group)
    placements: dict[str, list[DevicePlacement]] = {m: [] for m in matched}
    for placement in layout.devices:
        if placement.device in placements:
            placements[placement.device].append(placement)
    report.checked_shapes = sum(len(p) for p in placements.values())

    counts_ok = all(
        len(placements[name]) == spec.device(name).geometry.m
        for name in matched
    )
    if len(matched) == 2 and counts_ok:
        a, b = matched
        if spec.device(a).geometry.m == spec.device(b).geometry.m:
            _check_mirror_realization(
                a, placements[a], b, placements[b], report, layout.name
            )
    device_metal = tech.device_metal if tech is not None else "M1"
    _check_pair_metal(layout, spec, device_metal, report)
    return report


def _check_mirror_realization(
    name_a: str,
    units_a: list[DevicePlacement],
    name_b: str,
    units_b: list[DevicePlacement],
    report: Report,
    layout_name: str,
) -> None:
    """SYMG-PLACE / SYMG-AXIS / SYMG-ORIENT for one mirrored pair."""
    pair = f"{name_a}/{name_b}"
    rows: dict[int, dict[str, list[DevicePlacement]]] = {}
    for name, units in ((name_a, units_a), (name_b, units_b)):
        for unit in units:
            row = rows.setdefault(unit.rect.y0, {name_a: [], name_b: []})
            row[name].append(unit)

    axes: list[tuple[int, float]] = []
    orientations: dict[bool, int] = {}
    for y0 in sorted(rows):
        row = rows[y0]
        in_a = sorted(row[name_a], key=lambda u: u.rect.x0)
        in_b = sorted(row[name_b], key=lambda u: u.rect.x0)
        if len(in_a) != len(in_b) or not in_a:
            continue  # unequal rows are CONST-SYM-AXIS territory
        extent = [u.rect for u in in_a + in_b]
        axis = (min(r.x0 for r in extent) + max(r.x1 for r in extent)) / 2.0
        axes.append((y0, axis))
        # Mirror pairing: the leftmost A unit reflects onto the
        # rightmost B unit, and so on inward.
        for a_unit, b_unit in zip(in_a, reversed(in_b)):
            want = 2.0 * axis - a_unit.rect.center.x
            got = float(b_unit.rect.center.x)
            if abs(want - got) > POSITION_TOL:
                report.flag(
                    "SYMG-PLACE",
                    f"row at y={y0}: {name_b}[{b_unit.unit_index}] sits "
                    f"at x={got:.0f} but the mirror of "
                    f"{name_a}[{a_unit.unit_index}] about the row axis "
                    f"x={axis:.0f} lands at x={want:.0f}",
                    layout=layout_name,
                    subject=pair,
                    location=b_unit.rect.center,
                )
            relation = a_unit.flipped == b_unit.flipped
            orientations[relation] = orientations.get(relation, 0) + 1

    if len(orientations) > 1:
        same = orientations.get(True, 0)
        opposite = orientations.get(False, 0)
        report.flag(
            "SYMG-ORIENT",
            f"mirrored pairs of {pair} realize mixed orientation "
            f"relations: {same} pair(s) share their flip and "
            f"{opposite} pair(s) oppose it; one relation must hold "
            f"cell-wide",
            layout=layout_name,
            subject=pair,
        )

    if len(axes) > 1:
        lo_y, lo_axis = min(axes, key=lambda item: item[1])
        hi_y, hi_axis = max(axes, key=lambda item: item[1])
        if hi_axis - lo_axis > POSITION_TOL:
            report.flag(
                "SYMG-AXIS",
                f"rows of {pair} disagree on the mirror axis: row "
                f"y={lo_y} mirrors about x={lo_axis:.0f} but row "
                f"y={hi_y} about x={hi_axis:.0f}; the pattern promises "
                f"one cell-wide axis",
                layout=layout_name,
                subject=pair,
            )


def _pair_lengths(layout: Layout, net: str) -> dict[tuple[str, str], int]:
    """Summed wire length per (layer, role) for the trunk roles."""
    totals: dict[tuple[str, str], int] = {}
    for wire in layout.wires_on_net(net):
        if wire.role not in _TRUNK_ROLES:
            continue
        key = (wire.layer, wire.role)
        totals[key] = totals.get(key, 0) + wire.length
    return totals


def _pair_via_cuts(
    layout: Layout, net: str, device_metal: str
) -> dict[tuple[str, str], int]:
    """Summed via cuts per (lower, upper) layer pair for one net.

    Ladders touching the device metal are stub contacts and follow
    diffusion parity, so they are skipped.
    """
    totals: dict[tuple[str, str], int] = {}
    for via in layout.vias_on_net(net):
        if device_metal in (via.lower_layer, via.upper_layer):
            continue
        key = (via.lower_layer, via.upper_layer)
        totals[key] = totals.get(key, 0) + via.cuts
    return totals


def _check_pair_metal(
    layout: Layout, spec: CellSpec, device_metal: str, report: Report
) -> None:
    """SYMG-WIRE-LEN / SYMG-VIA-COUNT per declared symmetric net pair."""
    for net_a, net_b in spec.symmetric_pairs:
        subject = f"{net_a}/{net_b}"
        len_a = _pair_lengths(layout, net_a)
        len_b = _pair_lengths(layout, net_b)
        for key in sorted(set(len_a) | set(len_b)):
            layer, role = key
            a, b = len_a.get(key, 0), len_b.get(key, 0)
            diff = abs(a - b)
            bound = max(LEN_ATOL_NM, LEN_RTOL * max(a, b))
            if diff > bound:
                report.flag(
                    "SYMG-WIRE-LEN",
                    f"{role} metal on {layer} totals {a} nm for "
                    f"{net_a} but {b} nm for {net_b} "
                    f"(|diff| {diff} nm > tolerance {bound:.0f} nm)",
                    layout=layout.name,
                    subject=subject,
                )
        cuts_a = _pair_via_cuts(layout, net_a, device_metal)
        cuts_b = _pair_via_cuts(layout, net_b, device_metal)
        for key in sorted(set(cuts_a) | set(cuts_b)):
            lower, upper = key
            a, b = cuts_a.get(key, 0), cuts_b.get(key, 0)
            if a != b:
                report.flag(
                    "SYMG-VIA-COUNT",
                    f"via ladder {lower}->{upper} has {a} cut(s) on "
                    f"{net_a} but {b} on {net_b}; symmetric nets need "
                    f"identical ladders",
                    layout=layout.name,
                    subject=subject,
                )
