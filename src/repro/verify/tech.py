"""Electrical-audit technology table: EM, IR, antenna and density limits.

The static electrical audit (:mod:`repro.verify.emag`,
:mod:`repro.verify.antenna`) needs numbers the functional
:class:`~repro.tech.pdk.Technology` does not carry: per-layer DC
current-density limits, via current limits per cut, the tolerable supply
IR drop, antenna (charge-collection) ratios and metal-density window
bounds.  :class:`AuditTech` bundles them.

The defaults (:meth:`AuditTech.for_technology`) encode the same FinFET
reality the BEOL stack does: thin lower metals are not just resistive
but electromigration-fragile (their limit is ~1 mA per um of width),
while thick upper metals carry several times more.  Via limits follow
cut area.  All limits are *DC worst-case* numbers — the audit is static
and assumes every branch carries its worst-case current forever, which
is the conservative reading a signoff check wants.

Current budgets
---------------

When no DC operating point is available the audit falls back to a
*declared budget*: every MOS device is assumed to carry
``current_per_fin_a`` per fin of channel (drain and source), a bound a
few times above the bias currents the primitive testbenches actually
apply.  An :class:`~repro.spice.dc.OperatingPoint` replaces the budget
with the solved branch currents (see
:func:`repro.verify.emag.net_currents_from_op`).

All fields are plain floats/ints so a table can be overridden per call
site (``AuditTech.for_technology(tech, current_per_fin_a=1e-6)``) or in
tests without touching the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import VerificationError
from repro.tech.pdk import Technology

__all__ = ["LayerAudit", "AuditTech"]


@dataclass(frozen=True)
class LayerAudit:
    """Audit limits for one metal layer.

    Attributes:
        em_limit_ma_um: Maximum sustained DC current per micrometre of
            wire width (mA/um).  The EM check compares each wire's
            worst-case current density against this.
        max_density: Metal-density window ceiling (0..1).  Windows
            denser than this flag ``DEN-WINDOW-MAX`` (dishing/CMP risk).
        min_density: Metal-density window floor (0..1).  Windows on a
            *used* layer sparser than this flag ``DEN-WINDOW-MIN`` as a
            warning (fill would be required at tapeout).
    """

    em_limit_ma_um: float
    max_density: float = 0.85
    min_density: float = 0.005

    def __post_init__(self) -> None:
        if self.em_limit_ma_um <= 0:
            raise VerificationError("em_limit_ma_um must be > 0")
        if not 0.0 <= self.min_density <= self.max_density <= 1.0:
            raise VerificationError(
                "need 0 <= min_density <= max_density <= 1"
            )


@dataclass(frozen=True)
class AuditTech:
    """The full static electrical-audit table for one technology.

    Attributes:
        layers: Per-metal audit limits, keyed by layer name.
        via_limit_ma_per_cut: Maximum sustained DC current per via cut
            (mA), keyed by via layer name (``"V1"``...).
        ir_drop_frac: Tolerable supply-rail IR drop as a fraction of
            ``tech.vdd``; the worst-case drop from a power port to the
            farthest device terminal must stay below it.
        current_per_fin_a: Declared worst-case branch-current budget per
            fin (A) used when no operating point is available.  Each MOS
            device is assumed to conduct ``nfin * nf * m *
            current_per_fin_a`` through its drain and source.
        antenna_max_ratio: Maximum antenna ratio — the net's metal area
            on one charge-collecting layer divided by the connected gate
            area — before ``ANT-RATIO`` fires.
        gate_length_nm: Effective electrical gate length (nm) used to
            estimate gate area for the antenna ratio.
        density_window_nm: Edge length (nm) of the metal-density window
            grid; layouts smaller than one window are checked as a
            single window.
    """

    layers: Mapping[str, LayerAudit]
    via_limit_ma_per_cut: Mapping[str, float]
    ir_drop_frac: float = 0.05
    current_per_fin_a: float = 2.0e-7
    antenna_max_ratio: float = 400.0
    gate_length_nm: int = 20
    density_window_nm: int = 5000
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.ir_drop_frac < 1.0:
            raise VerificationError("ir_drop_frac must be in (0, 1)")
        if self.current_per_fin_a <= 0:
            raise VerificationError("current_per_fin_a must be > 0")
        if self.antenna_max_ratio <= 0:
            raise VerificationError("antenna_max_ratio must be > 0")
        if self.gate_length_nm <= 0 or self.density_window_nm <= 0:
            raise VerificationError(
                "gate_length_nm and density_window_nm must be > 0"
            )

    def layer(self, name: str) -> LayerAudit | None:
        """Audit limits for a metal layer; None when the table has none."""
        return self.layers.get(name)

    def via_limit(self, name: str) -> float | None:
        """Per-cut current limit (mA) for a via layer, if tabulated."""
        return self.via_limit_ma_per_cut.get(name)

    def with_overrides(self, **kwargs: Any) -> "AuditTech":
        """A copy with selected fields replaced (test convenience)."""
        return replace(self, **kwargs)

    @classmethod
    def for_technology(cls, tech: Technology, **overrides: Any) -> "AuditTech":
        """Default audit table for a technology's metal stack.

        EM limits scale with the layer's conductance class: the limit
        grows as sheet resistance falls (thicker copper sustains more
        current per unit width).  The mapping is calibrated so the
        14nm-class FF14 stack lands on the familiar 1 mA/um for M1/M2
        and ~10 mA/um for the top metal.  Via limits follow cut area.
        """
        layers: dict[str, LayerAudit] = {}
        for metal in tech.stack.metals:
            # sheet_res 12 -> 1.0 mA/um ... sheet_res 1 -> 12 mA/um.
            limit = max(0.5, 12.0 / metal.sheet_res)
            layers[metal.name] = LayerAudit(em_limit_ma_um=limit)
        vias: dict[str, float] = {}
        for via in tech.stack.vias:
            # 32nm cuts carry ~0.1 mA each; limit scales with cut area.
            vias[via.name] = 0.1 * (via.size / 32.0) ** 2
        table = cls(layers=layers, via_limit_ma_per_cut=vias)
        if overrides:
            table = replace(table, **overrides)
        return table
