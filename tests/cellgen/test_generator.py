"""The primitive cell generator."""

import pytest

from repro.cellgen import CellDevice, CellSpec, WireConfig, generate_layout
from repro.devices.mosfet import MosGeometry
from repro.errors import LayoutError


def dp_spec(geo=MosGeometry(8, 4, 2), geo_b=None):
    return CellSpec(
        name="dp",
        devices=(
            CellDevice("MA", "n", geo, {"d": "outp", "g": "inp", "s": "tail"}),
            CellDevice("MB", "n", geo_b or geo, {"d": "outn", "g": "inn", "s": "tail"}),
        ),
        matched_group=("MA", "MB"),
        port_nets=("inp", "inn", "outp", "outn", "tail"),
    )


@pytest.mark.parametrize("pattern", ["ABAB", "ABBA", "AABB", "CC2D"])
def test_generates_all_patterns(tech, pattern):
    lay = generate_layout(dp_spec(), pattern, tech)
    assert len(lay.devices) == 4  # 2 devices x m=2 units
    assert lay.width > 0 and lay.height > 0
    assert lay.metadata["pattern"] == pattern


def test_unit_count_matches_multiplicity(tech):
    lay = generate_layout(dp_spec(MosGeometry(8, 4, 3)), "ABAB", tech)
    assert len([p for p in lay.devices if p.device == "MA"]) == 3


def test_ports_exist_for_all_port_nets(tech):
    lay = generate_layout(dp_spec(), "ABAB", tech)
    assert set(lay.port_nets()) == {"inp", "inn", "outp", "outn", "tail"}


def test_rows_metadata(tech):
    lay = generate_layout(dp_spec(MosGeometry(8, 4, 3)), "ABAB", tech)
    assert lay.metadata["rows"] == 3


def test_well_rect_encloses_devices(tech):
    lay = generate_layout(dp_spec(), "ABBA", tech)
    well = lay.well_rect
    for p in lay.devices:
        assert well.x0 <= p.rect.x0 and well.x1 >= p.rect.x1


def test_stub_owners_recorded(tech):
    lay = generate_layout(dp_spec(), "ABAB", tech)
    owners = {w.owner for w in lay.wires if w.role == "finger_stub"}
    assert "MA.s" in owners and "MB.d" in owners and "MA.g" in owners


def test_parallel_straps_increase_wire_count_and_height(tech):
    base = generate_layout(dp_spec(), "ABAB", tech)
    tuned = generate_layout(
        dp_spec(), "ABAB", tech, WireConfig(parallel={"tail": 4})
    )
    n_base = len(base.wires_on_net("tail"))
    n_tuned = len(tuned.wires_on_net("tail"))
    assert n_tuned > n_base
    assert tuned.height > base.height


def test_dummies_widen_cell(tech):
    base = generate_layout(dp_spec(), "ABAB", tech)
    dummied = generate_layout(dp_spec(), "ABAB", tech, WireConfig(dummies=True))
    assert dummied.width > base.width
    assert all(p.dummy_fingers > 0 for p in dummied.devices)


def test_rails_present_per_net(tech):
    from repro.cellgen.generator import RAILS_PER_NET

    # A 2-row cell gets min(RAILS_PER_NET, rows) rails per signal net.
    lay = generate_layout(dp_spec(), "ABAB", tech)
    rails = [w for w in lay.wires if w.role == "rail" and w.net == "tail"]
    assert len(rails) == min(RAILS_PER_NET, 2)
    # More rows, more rails (up to the cap).
    tall = generate_layout(dp_spec(MosGeometry(8, 4, 6)), "ABAB", tech)
    tall_rails = [w for w in tall.wires if w.role == "rail" and w.net == "tail"]
    assert len(tall_rails) == RAILS_PER_NET


def test_mismatched_matched_group_sizing_rejected(tech):
    spec = dp_spec(MosGeometry(8, 4, 2), geo_b=MosGeometry(16, 4, 2))
    with pytest.raises(LayoutError):
        generate_layout(spec, "ABAB", tech)


def test_empty_matched_group_rejected(tech):
    spec = CellSpec(
        name="x",
        devices=(CellDevice("M1", "n", MosGeometry(8), {"d": "d", "g": "g", "s": "0"}),),
        matched_group=(),
        port_nets=("d",),
    )
    with pytest.raises(LayoutError):
        generate_layout(spec, "ABAB", tech)


def test_unmatched_device_gets_own_row(tech):
    geo = MosGeometry(8, 4, 2)
    spec = CellSpec(
        name="sdp",
        devices=(
            CellDevice("MA", "n", geo, {"d": "outp", "g": "inp", "s": "t"}),
            CellDevice("MB", "n", geo, {"d": "outn", "g": "inn", "s": "t"}),
            CellDevice("MSW", "n", MosGeometry(8, 4, 1), {"d": "t", "g": "en", "s": "tail"}),
        ),
        matched_group=("MA", "MB"),
        port_nets=("inp", "inn", "outp", "outn", "tail", "en"),
    )
    lay = generate_layout(spec, "ABBA", tech)
    assert lay.metadata["rows"] == 3  # 2 matched rows + 1 for the switch


def test_missing_terminal_rejected():
    with pytest.raises(LayoutError):
        CellDevice("MX", "n", MosGeometry(8), {"d": "a", "g": "b"})


def test_bad_strap_count_rejected(tech):
    with pytest.raises(LayoutError):
        generate_layout(
            dp_spec(), "ABAB", tech, WireConfig(parallel={"tail": 0})
        )


def test_aspect_ratio_varies_with_sizing(tech):
    wide = generate_layout(dp_spec(MosGeometry(4, 16, 1)), "ABAB", tech)
    tall = generate_layout(dp_spec(MosGeometry(16, 4, 4)), "ABAB", tech)
    assert wide.aspect_ratio > tall.aspect_ratio


def test_gate_mesh_density(tech):
    # A contact every four fingers plus the centre for nf=8: 2 per unit.
    lay = generate_layout(dp_spec(MosGeometry(8, 8, 1)), "ABAB", tech)
    ma_gate_stubs = [
        w for w in lay.wires if w.role == "finger_stub" and w.owner == "MA.g"
    ]
    assert len(ma_gate_stubs) == 2
