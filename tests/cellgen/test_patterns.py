"""Placement patterns: structure and symmetry invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.cellgen.patterns import (
    available_patterns,
    centroid_offsets,
    centroid_offsets_2d,
    pattern_rows,
    pattern_sequence,
)
from repro.errors import LayoutError


def flatten(rows):
    return [unit for row in rows for unit in row]


def test_abab_round_robin():
    rows = pattern_sequence("ABAB", ["A", "B"], 2)
    assert rows == [[("A", 0), ("B", 0), ("A", 1), ("B", 1)]]


def test_aabb_clustered():
    rows = pattern_sequence("AABB", ["A", "B"], 2)
    assert rows == [[("A", 0), ("A", 1), ("B", 0), ("B", 1)]]


def test_abba_mirror():
    (row,) = pattern_sequence("ABBA", ["A", "B"], 2)
    assert [d for d, _ in row] == ["A", "B", "B", "A"]


def test_abba_odd_count_rejected_1d():
    with pytest.raises(LayoutError):
        pattern_sequence("ABBA", ["A", "B"], 3)


def test_abba_single_unit_degenerates():
    (row,) = pattern_sequence("ABBA", ["A", "B"], 1)
    assert len(row) == 2


def test_cc2d_two_rows():
    rows = pattern_sequence("CC2D", ["A", "B"], 2)
    assert len(rows) == 2
    assert [d for d, _ in rows[0]] != [d for d, _ in rows[1]]


def test_cc2d_validation():
    with pytest.raises(LayoutError):
        pattern_sequence("CC2D", ["A", "B", "C"], 2)
    with pytest.raises(LayoutError):
        pattern_sequence("CC2D", ["A", "B"], 3)


def test_unknown_pattern():
    with pytest.raises(LayoutError):
        pattern_sequence("XYZW", ["A", "B"], 2)


def test_duplicate_devices_rejected():
    with pytest.raises(LayoutError):
        pattern_sequence("ABAB", ["A", "A"], 2)


def test_ratioed_counts():
    (row,) = pattern_sequence("ABAB", ["R", "O"], {"R": 1, "O": 3})
    devices = [d for d, _ in row]
    assert devices.count("R") == 1
    assert devices.count("O") == 3


def test_available_patterns_even_counts():
    names = available_patterns(["A", "B"], 4)
    assert "ABAB" in names and "ABBA" in names and "AABB" in names
    assert "CC2D" in names


def test_available_patterns_odd_counts():
    names = available_patterns(["A", "B"], 5)
    assert "ABBA" not in names
    assert "CC2D" not in names


def test_centroids_abba_matched():
    rows = pattern_sequence("ABBA", ["A", "B"], 4)
    cent = centroid_offsets(rows)
    assert cent["A"] == pytest.approx(cent["B"])


def test_centroids_aabb_mismatched():
    rows = pattern_sequence("AABB", ["A", "B"], 4)
    cent = centroid_offsets(rows)
    assert abs(cent["A"] - cent["B"]) == pytest.approx(4.0)


# --- 2D arrangement (the generator's view) -----------------------------------


def test_pattern_rows_abab_columns():
    rows = pattern_rows("ABAB", ["A", "B"], 3)
    assert len(rows) == 3
    for row in rows:
        assert [d for d, _ in row] == ["A", "B"]


def test_pattern_rows_abba_alternates():
    rows = pattern_rows("ABBA", ["A", "B"], 4)
    assert [d for d, _ in rows[0]] == ["A", "B"]
    assert [d for d, _ in rows[1]] == ["B", "A"]


def test_pattern_rows_abba_odd_supported():
    rows = pattern_rows("ABBA", ["A", "B"], 5)
    assert len(rows) == 5


def test_pattern_rows_aabb_clusters_rows():
    rows = pattern_rows("AABB", ["A", "B"], 4)
    devices_by_row = [{d for d, _ in row} for row in rows]
    assert devices_by_row[0] == {"A"}
    assert devices_by_row[-1] == {"B"}


def test_pattern_rows_unit_conservation():
    rows = pattern_rows("ABBA", ["A", "B"], 6)
    units = flatten(rows)
    assert sorted(u for d, u in units if d == "A") == list(range(6))
    assert sorted(u for d, u in units if d == "B") == list(range(6))


@given(
    st.sampled_from(["ABAB", "AABB"]),
    st.integers(min_value=1, max_value=8),
)
def test_pattern_rows_conserve_units(pattern, m):
    rows = pattern_rows(pattern, ["A", "B"], m)
    units = flatten(rows)
    assert len(units) == 2 * m
    assert len(set(units)) == 2 * m


def test_centroids_2d_abba_matched_even():
    rows = pattern_rows("ABBA", ["A", "B"], 4)
    cent = centroid_offsets_2d(rows)
    assert cent["A"][0] == pytest.approx(cent["B"][0])
    assert cent["A"][1] == pytest.approx(cent["B"][1])


def test_centroids_2d_abab_x_offset():
    rows = pattern_rows("ABAB", ["A", "B"], 4)
    cent = centroid_offsets_2d(rows)
    assert abs(cent["A"][0] - cent["B"][0]) == pytest.approx(1.0)
    assert cent["A"][1] == pytest.approx(cent["B"][1])


def test_centroids_2d_aabb_y_offset():
    rows = pattern_rows("AABB", ["A", "B"], 4)
    cent = centroid_offsets_2d(rows)
    assert abs(cent["A"][1] - cent["B"][1]) > 0.5


def test_pattern_rows_ratioed_wraps():
    rows = pattern_rows("ABAB", ["R", "O"], {"R": 2, "O": 6})
    units = flatten(rows)
    assert len([1 for d, _ in units if d == "O"]) == 6
