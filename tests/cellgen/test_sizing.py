"""Sizing variant enumeration."""

import pytest
from hypothesis import given, strategies as st

from repro.cellgen.sizing import aspect_ratio_of_sizing, enumerate_sizings
from repro.devices.mosfet import MosGeometry
from repro.errors import LayoutError
from repro.tech import DesignRules


def test_preserves_total_fins():
    for g in enumerate_sizings(960):
        assert g.nfins_total == 960


def test_paper_variants_present():
    sizings = {(g.nfin, g.nf, g.m) for g in enumerate_sizings(960)}
    # The paper's Table III variants are all valid factorizations.
    for triple in [(8, 20, 6), (16, 12, 5), (24, 20, 2), (12, 20, 4)]:
        assert triple in sizings


def test_respects_bounds():
    for g in enumerate_sizings(960, min_nfin=8, max_nfin=16, max_m=4):
        assert 8 <= g.nfin <= 16
        assert g.m <= 4


def test_even_nf_default():
    assert all(g.nf % 2 == 0 for g in enumerate_sizings(960))


def test_odd_nf_allowed_when_requested():
    sizings = enumerate_sizings(945, even_nf=False, min_nfin=5, max_nfin=32,
                                min_nf=3, max_nf=32)
    assert any(g.nf % 2 == 1 for g in sizings)


def test_no_factorization_raises():
    with pytest.raises(LayoutError):
        enumerate_sizings(7, min_nfin=2, max_nfin=3)


def test_invalid_total_raises():
    with pytest.raises(LayoutError):
        enumerate_sizings(0)


def test_sorted_output():
    sizings = enumerate_sizings(960)
    keys = [(g.nfin, g.nf, g.m) for g in sizings]
    assert keys == sorted(keys)


@given(
    st.integers(min_value=4, max_value=32),
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=8),
)
def test_enumeration_property(nfin, half_nf, m):
    # Build a total that is guaranteed to factor within the bounds.
    total = nfin * (2 * half_nf) * m
    for g in enumerate_sizings(total):
        assert g.nfin * g.nf * g.m == total


def test_aspect_ratio_monotone_in_nfin():
    rules = DesignRules()
    tall = aspect_ratio_of_sizing(MosGeometry(24, 20, 2), rules)
    short = aspect_ratio_of_sizing(MosGeometry(8, 20, 2), rules)
    assert tall < short  # more fins per row -> taller -> lower W/H


def test_aspect_ratio_units_in_row_override():
    rules = DesignRules()
    one = aspect_ratio_of_sizing(MosGeometry(8, 20, 4), rules, units_in_row=1)
    two = aspect_ratio_of_sizing(MosGeometry(8, 20, 4), rules, units_in_row=2)
    assert two == pytest.approx(2 * one)
