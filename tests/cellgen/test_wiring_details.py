"""Mesh wiring details: strap accounting, power nets, slot geometry."""

import pytest

from repro.cellgen import CellDevice, CellSpec, WireConfig, generate_layout
from repro.devices.mosfet import MosGeometry


def cs_spec(geo=MosGeometry(8, 6, 2)):
    """A single-device cell with a ground-connected source."""
    return CellSpec(
        name="cs",
        devices=(CellDevice("M1", "n", geo, {"d": "out", "g": "in", "s": "0"}),),
        matched_group=("M1",),
        port_nets=("in", "out"),
    )


def straps_on(layout, net):
    return [w for w in layout.wires if w.role == "strap" and w.net == net]


def rails_on(layout, net):
    return [w for w in layout.wires if w.role == "rail" and w.net == net]


def test_strap_count_matches_metadata(tech):
    lay = generate_layout(cs_spec(), "ABAB", tech, WireConfig(parallel={"out": 3}))
    per_row = lay.metadata["straps_per_row"]
    rows = lay.metadata["rows"]
    assert len(straps_on(lay, "out")) == per_row["out"] * rows


def test_power_net_gets_denser_mesh(tech):
    lay = generate_layout(cs_spec(), "ABAB", tech)
    assert len(straps_on(lay, "0")) > len(straps_on(lay, "out"))
    assert len(rails_on(lay, "0")) > len(rails_on(lay, "out"))


def test_single_row_cell_slimmer_mesh(tech):
    one_row = generate_layout(cs_spec(MosGeometry(8, 12, 1)), "ABAB", tech)
    two_rows = generate_layout(cs_spec(MosGeometry(8, 6, 2)), "ABAB", tech)
    per_row_1 = one_row.metadata["straps_per_row"]["out"]
    per_row_2 = two_rows.metadata["straps_per_row"]["out"]
    assert per_row_1 < per_row_2


def test_straps_span_to_rail_region(tech):
    lay = generate_layout(cs_spec(), "ABAB", tech)
    rails = rails_on(lay, "out")
    strap_right = max(w.rect.x1 for w in lay.wires if "strap" in w.role)
    rail_left = min(r.rect.x0 for r in rails)
    # The strap region reaches the rails (jumpers bridge the gap).
    assert strap_right >= rail_left


def test_vias_connect_stub_to_every_strap(tech):
    lay = generate_layout(cs_spec(), "ABAB", tech, WireConfig(parallel={"out": 2}))
    stub_count = len(
        [w for w in lay.wires if w.role == "finger_stub" and w.net == "out"]
    )
    per_row = lay.metadata["straps_per_row"]["out"]
    v1_count = len(
        [v for v in lay.vias if v.net == "out" and v.upper_layer == "M2"]
    )
    assert v1_count == stub_count * per_row


def test_stub_reaches_first_strap_only(tech):
    base = generate_layout(cs_spec(), "ABAB", tech)
    tuned = generate_layout(cs_spec(), "ABAB", tech, WireConfig(parallel={"out": 5}))

    def max_stub_len(layout):
        return max(
            w.length
            for w in layout.wires
            if w.role == "finger_stub" and w.net == "out"
        )

    # Adding straps must not lengthen the net's own stubs.
    assert max_stub_len(tuned) <= max_stub_len(base) + 1


def test_rails_span_full_height(tech):
    lay = generate_layout(cs_spec(), "ABAB", tech)
    box = lay.bbox()
    for rail in rails_on(lay, "out"):
        assert rail.rect.y0 <= box.y0 + 1
        assert rail.rect.height >= 0.9 * box.height
