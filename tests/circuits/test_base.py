"""CompositeCircuit assembly mechanics."""

import pytest

from repro.circuits import CommonSourceAmpCircuit
from repro.circuits.base import LayoutChoice, RouteBudget
from repro.core.port_constraints import GlobalRouteInfo
from repro.devices.mosfet import MosGeometry
from repro.spice.elements import Capacitor, Resistor


@pytest.fixture(scope="module")
def circuit(tech):
    return CommonSourceAmpCircuit(tech, i_bias=50e-6, stage_fins=48, load_fins=72)


@pytest.fixture(scope="module")
def choices():
    return {
        "xstage": LayoutChoice(base=MosGeometry(8, 6, 1), pattern="ABAB"),
        "xload": LayoutChoice(base=MosGeometry(8, 9, 1), pattern="ABAB"),
    }


def test_schematic_flat_names(circuit):
    sch = circuit.schematic()
    names = {e.name for e in sch.elements}
    assert "xstage.M1" in names
    assert "xload.M1" in names


def test_assembled_contains_extraction_elements(circuit, choices):
    asm = circuit.assembled(choices)
    resistors = [e for e in asm.elements if isinstance(e, Resistor)]
    # Trunk + branch resistors from both extracted primitives.
    assert any(e.name.startswith("xstage.rt_") for e in resistors)
    assert any(e.name.startswith("xload.rb_") for e in resistors)


def test_route_budget_splits_net(circuit, choices, tech):
    budgets = {
        "vout": RouteBudget(
            route=GlobalRouteInfo("vout", "M3", 3000.0), n_wires=2
        )
    }
    asm = circuit.assembled(choices, budgets)
    names = {e.name for e in asm.elements}
    assert "c_route_vout" in names
    assert "r_tap_vout" in names
    # One pin resistor per primitive touching the net.
    pin_resistors = [n for n in names if n.startswith("r_route_vout_")]
    assert len(pin_resistors) == 2


def test_route_capacitance_scales_with_wires(circuit, choices, tech):
    def route_cap(n):
        budgets = {
            "vout": RouteBudget(
                route=GlobalRouteInfo("vout", "M3", 3000.0), n_wires=n
            )
        }
        asm = circuit.assembled(choices, budgets)
        cap = asm.element("c_route_vout")
        assert isinstance(cap, Capacitor)
        return cap.value

    assert route_cap(4) == pytest.approx(4 * route_cap(1))


def test_ports_to_optimize_excludes_ground(circuit):
    for binding in circuit.bindings():
        for port in binding.ports_to_optimize():
            net = binding.port_map[port]
            assert net != "0"


def test_testbench_includes_dut_and_stimuli(circuit):
    tb = circuit.testbench(circuit.schematic(), ac=True)
    names = {e.name for e in tb.elements}
    assert "vdd" in names and "vin" in names and "cl" in names
    assert any(n.startswith("xstage.") for n in names)
