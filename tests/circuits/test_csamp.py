"""Common-source amplifier circuit (Fig. 2 context)."""

import pytest

from repro.circuits import CommonSourceAmpCircuit
from repro.circuits.base import LayoutChoice
from repro.devices.mosfet import MosGeometry


@pytest.fixture(scope="module")
def circuit(tech):
    return CommonSourceAmpCircuit(tech, i_bias=100e-6, stage_fins=48, load_fins=72)


@pytest.fixture(scope="module")
def schematic_metrics(circuit):
    return circuit.measure(circuit.schematic())


def test_schematic_current_matches_bias(circuit, schematic_metrics):
    assert schematic_metrics["current"] == pytest.approx(circuit.i_bias, rel=0.05)


def test_schematic_gain_positive_db(schematic_metrics):
    assert schematic_metrics["gain_db"] > 10.0


def test_power_consistent(circuit, schematic_metrics):
    assert schematic_metrics["power"] == pytest.approx(
        schematic_metrics["current"] * circuit.tech.vdd
    )


def test_ugf_above_3db(schematic_metrics):
    assert schematic_metrics["ugf"] > schematic_metrics["f3db"]


def test_bindings_cover_two_primitives(circuit):
    names = [b.name for b in circuit.bindings()]
    assert names == ["xstage", "xload"]


def test_assembled_degrades_vs_schematic(circuit, schematic_metrics):
    choices = {
        "xstage": LayoutChoice(base=MosGeometry(8, 6, 1), pattern="ABAB"),
        "xload": LayoutChoice(base=MosGeometry(8, 9, 1), pattern="ABAB"),
    }
    assembled = circuit.assembled(choices)
    metrics = circuit.measure(assembled)
    assert metrics["gain_db"] < schematic_metrics["gain_db"]
    assert metrics["current"] < schematic_metrics["current"]


def test_missing_choice_raises(circuit):
    from repro.errors import OptimizationError

    with pytest.raises(OptimizationError):
        circuit.assembled({})


def test_route_budget_applies_rc(circuit, tech):
    from repro.circuits.base import RouteBudget
    from repro.core.port_constraints import GlobalRouteInfo

    choices = {
        "xstage": LayoutChoice(base=MosGeometry(8, 6, 1), pattern="ABAB"),
        "xload": LayoutChoice(base=MosGeometry(8, 9, 1), pattern="ABAB"),
    }
    budgets = {
        "vout": RouteBudget(
            route=GlobalRouteInfo("vout", "M3", 5000.0), n_wires=1
        )
    }
    with_route = circuit.measure(circuit.assembled(choices, budgets))
    without = circuit.measure(circuit.assembled(choices))
    # The route RC loads the output: lower gain and unity-gain frequency.
    assert with_route["gain_db"] < without["gain_db"]
    assert with_route["ugf"] < without["ugf"]
