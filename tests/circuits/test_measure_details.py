"""Measurement-driver details shared by the benchmark circuits."""

import pytest

from repro.circuits import CommonSourceAmpCircuit, StrongArmComparator


def test_csamp_power_equals_current_times_vdd(tech):
    circuit = CommonSourceAmpCircuit(tech, i_bias=40e-6, stage_fins=48,
                                     load_fins=72)
    metrics = circuit.measure(circuit.schematic())
    assert metrics["power"] == pytest.approx(
        metrics["current"] * tech.vdd, rel=1e-9
    )


def test_strongarm_delay_uses_first_resolution(tech):
    """The delay is measured from the first clock edge, not from t=0."""
    comparator = StrongArmComparator(tech)
    metrics = comparator.measure(comparator.schematic(), dt=2e-12)
    # The clock rises at 0.2 ns; the decision cannot precede it.
    assert metrics["delay"] < 0.2e-9  # delay is edge-relative, small


def test_strongarm_negative_input_same_magnitude_delay(tech):
    pos = StrongArmComparator(tech, v_in_diff=+30e-3)
    neg = StrongArmComparator(tech, v_in_diff=-30e-3)
    d_pos = pos.measure(pos.schematic(), dt=2e-12)
    d_neg = neg.measure(neg.schematic(), dt=2e-12)
    assert d_pos["decision"] == -d_neg["decision"]
    assert d_pos["delay"] == pytest.approx(d_neg["delay"], rel=0.1)


def test_csamp_schematic_vs_bias_current_parameter(tech):
    lo = CommonSourceAmpCircuit(tech, i_bias=30e-6, stage_fins=48, load_fins=72)
    hi = CommonSourceAmpCircuit(tech, i_bias=90e-6, stage_fins=48, load_fins=72)
    m_lo = lo.measure(lo.schematic())
    m_hi = hi.measure(hi.schematic())
    assert m_hi["current"] > 2 * m_lo["current"]
    assert m_hi["ugf"] > m_lo["ugf"]  # more gm into the same load
