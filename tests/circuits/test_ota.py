"""Five-transistor OTA (Table VI circuit)."""

import pytest

from repro.circuits import FiveTransistorOta
from repro.circuits.base import LayoutChoice
from repro.devices.mosfet import MosGeometry


@pytest.fixture(scope="module")
def ota(tech):
    return FiveTransistorOta(
        tech, i_tail=200e-6, c_load=100e-15,
        pair_fins=96, mirror_fins=96, tail_fins=192,
    )


@pytest.fixture(scope="module")
def schematic_metrics(ota):
    return ota.measure(ota.schematic())


def test_schematic_current_near_tail(ota, schematic_metrics):
    # Total supply current ~ the tail current (mirror branch included).
    assert schematic_metrics["current"] == pytest.approx(ota.i_tail, rel=0.25)


def test_schematic_gain_and_margin(schematic_metrics):
    assert schematic_metrics["gain_db"] > 20.0
    assert 45.0 < schematic_metrics["phase_margin"] < 120.0


def test_frequency_ordering(schematic_metrics):
    assert schematic_metrics["f3db"] < schematic_metrics["ugf"]


def test_ugf_tracks_load(tech):
    light = FiveTransistorOta(tech, i_tail=200e-6, c_load=50e-15,
                              pair_fins=96, mirror_fins=96, tail_fins=192)
    heavy = FiveTransistorOta(tech, i_tail=200e-6, c_load=400e-15,
                              pair_fins=96, mirror_fins=96, tail_fins=192)
    assert (
        light.measure(light.schematic())["ugf"]
        > heavy.measure(heavy.schematic())["ugf"]
    )


def test_calibrate_biases_updates_primitives(ota):
    ota.calibrate_biases()
    # The diode node of the PMOS mirror sits below VDD by a gate drop.
    assert 0.3 < ota.pair.vout < ota.tech.vdd
    assert 0.0 < ota.tail.vout < 0.5


def test_bindings_match_fig6(ota):
    names = {b.name for b in ota.bindings()}
    assert names == {"xdp", "xmirror", "xtail"}
    dp_binding = next(b for b in ota.bindings() if b.name == "xdp")
    assert ("outp", "outn") in dp_binding.symmetric_ports


def test_assembled_ota_measures(ota, schematic_metrics):
    choices = {
        "xdp": LayoutChoice(base=MosGeometry(8, 6, 2), pattern="ABBA"),
        "xmirror": LayoutChoice(base=MosGeometry(8, 6, 2), pattern="ABAB"),
        "xtail": LayoutChoice(base=MosGeometry(8, 12, 2), pattern="ABAB"),
    }
    metrics = ota.measure(ota.assembled(choices))
    # Gain can move either way (gm and gds both degrade); UGF and current
    # reliably fall with parasitics.
    assert metrics["gain_db"] == pytest.approx(
        schematic_metrics["gain_db"], abs=4.0
    )
    assert metrics["ugf"] < schematic_metrics["ugf"]
    assert metrics["current"] < schematic_metrics["current"]
