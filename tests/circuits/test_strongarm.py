"""StrongARM comparator (Fig. 3 / Table VI)."""

import pytest

from repro.circuits import StrongArmComparator
from repro.circuits.base import LayoutChoice
from repro.devices.mosfet import MosGeometry


@pytest.fixture(scope="module")
def comparator(tech):
    return StrongArmComparator(tech)


@pytest.fixture(scope="module")
def schematic_metrics(comparator):
    return comparator.measure(comparator.schematic(), dt=2e-12)


def test_resolves_with_positive_delay(schematic_metrics):
    assert 1e-12 < schematic_metrics["delay"] < 1e-9
    assert schematic_metrics["power"] > 0


def test_decision_follows_input_sign(tech):
    pos = StrongArmComparator(tech, v_in_diff=+50e-3)
    neg = StrongArmComparator(tech, v_in_diff=-50e-3)
    m_pos = pos.measure(pos.schematic(), dt=2e-12)
    m_neg = neg.measure(neg.schematic(), dt=2e-12)
    assert m_pos["decision"] > 0
    assert m_neg["decision"] < 0


def test_smaller_input_slower_decision(tech, schematic_metrics):
    small = StrongArmComparator(tech, v_in_diff=5e-3)
    m = small.measure(small.schematic(), dt=2e-12)
    assert m["delay"] > schematic_metrics["delay"]


def test_six_primitive_bindings(comparator):
    assert len(comparator.bindings()) == 6


def test_assembled_slower_than_schematic(comparator, schematic_metrics):
    choices = {
        "xpair": LayoutChoice(base=MosGeometry(8, 6, 2), pattern="ABBA"),
        "xregen": LayoutChoice(base=MosGeometry(8, 4, 2), pattern="ABBA"),
        "xlatchp": LayoutChoice(base=MosGeometry(8, 4, 2), pattern="ABAB"),
        "xprep": LayoutChoice(base=MosGeometry(8, 6, 1), pattern="ABAB"),
        "xpren": LayoutChoice(base=MosGeometry(8, 6, 1), pattern="ABAB"),
        "xtail": LayoutChoice(base=MosGeometry(8, 12, 2), pattern="ABAB"),
    }
    metrics = comparator.measure(comparator.assembled(choices), dt=2e-12)
    # Parasitics slow the decision (the Table VI delay column ordering).
    assert metrics["delay"] > schematic_metrics["delay"]
