"""Ring-oscillator VCO (Table VII circuit).

A 4-stage ring keeps transient runtimes test-friendly; the benchmark
reproduces the paper's 8-stage version.
"""

import pytest

from repro.circuits import RingOscillatorVco
from repro.errors import MeasureError


@pytest.fixture(scope="module")
def vco(tech):
    return RingOscillatorVco(tech, stages=4)


@pytest.fixture(scope="module")
def schematic(vco):
    return vco.schematic()


def test_even_stage_validation(tech):
    with pytest.raises(ValueError):
        RingOscillatorVco(tech, stages=3)


def test_bindings_count(vco):
    # One differential delay cell per stage.
    assert len(vco.bindings()) == vco.stages


def test_oscillates_at_high_control(vco, schematic):
    result = vco.measure(schematic, v_ctrl=0.55)
    assert result["frequency"] > 1e8
    assert result["swing"] > 0.3 * vco.tech.vdd


def test_frequency_increases_with_control(vco, schematic):
    f_lo = vco.measure(schematic, v_ctrl=0.5)["frequency"]
    f_hi = vco.measure(schematic, v_ctrl=0.65)["frequency"]
    assert f_hi > f_lo


def test_stops_oscillating_when_starved(vco, schematic):
    with pytest.raises(MeasureError):
        vco.measure(schematic, v_ctrl=0.1)


def test_frequency_sweep_and_table_metrics(vco, schematic):
    sweep = vco.frequency_sweep(schematic, [0.1, 0.5, 0.65])
    assert sweep[0.1] == 0.0
    assert sweep[0.65] > sweep[0.5] > 0
    metrics = RingOscillatorVco.table_vii_metrics(sweep)
    assert metrics["f_max"] == sweep[0.65]
    assert metrics["f_min"] == sweep[0.5]
    assert metrics["v_lo"] == 0.5


def test_table_metrics_no_oscillation_raises():
    with pytest.raises(MeasureError):
        RingOscillatorVco.table_vii_metrics({0.1: 0.0, 0.2: 0.0})


def test_estimate_period_positive(vco):
    assert vco.estimate_period() > 0
