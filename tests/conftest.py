"""Shared fixtures.

Expensive artifacts (optimization reports, flow results) are
session-scoped so many tests can assert against one run.
"""

from __future__ import annotations

import pytest

from repro.devices.mosfet import MosGeometry
from repro.tech import Technology


@pytest.fixture(scope="session")
def tech() -> Technology:
    """The default synthetic FF14 node."""
    return Technology.default()


@pytest.fixture(scope="session")
def tech_no_lde() -> Technology:
    """FF14 with LDEs disabled (ablation)."""
    return Technology.without_lde()


@pytest.fixture(scope="session")
def dp_geometry() -> MosGeometry:
    """The paper's bin-1 differential-pair sizing."""
    return MosGeometry(nfin=8, nf=20, m=6)


@pytest.fixture(scope="session")
def small_dp(tech):
    """A small differential pair (fast to simulate)."""
    from repro.primitives import DifferentialPair

    return DifferentialPair(tech, base_fins=96, name="test_dp")


@pytest.fixture(scope="session")
def paper_dp(tech):
    """The paper's 960-fin differential pair."""
    from repro.primitives import DifferentialPair

    return DifferentialPair(tech, base_fins=960, name="paper_dp")


@pytest.fixture(scope="session")
def small_dp_report(small_dp):
    """Algorithm-1 report for the small DP (shared across tests)."""
    from repro.core import PrimitiveOptimizer

    return PrimitiveOptimizer(n_bins=2, max_wires=4).optimize(small_dp)
