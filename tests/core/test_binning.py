"""Aspect-ratio binning."""

import pytest
from hypothesis import given, strategies as st

from repro.core.binning import bin_by_aspect_ratio
from repro.errors import OptimizationError


def test_three_clusters_split_cleanly():
    options = [0.1, 0.11, 0.12, 1.0, 1.1, 5.0, 5.5, 6.0]
    bins = bin_by_aspect_ratio(options, 3, lambda x: x)
    assert [sorted(b) for b in bins] == [
        [0.1, 0.11, 0.12],
        [1.0, 1.1],
        [5.0, 5.5, 6.0],
    ]


def test_single_bin_returns_all():
    options = [1.0, 2.0, 3.0]
    bins = bin_by_aspect_ratio(options, 1, lambda x: x)
    assert len(bins) == 1
    assert sorted(bins[0]) == options


def test_more_bins_than_options_capped():
    bins = bin_by_aspect_ratio([1.0, 2.0], 5, lambda x: x)
    assert len(bins) == 2


def test_empty_rejected():
    with pytest.raises(OptimizationError):
        bin_by_aspect_ratio([], 3, lambda x: x)


def test_invalid_bin_count():
    with pytest.raises(OptimizationError):
        bin_by_aspect_ratio([1.0], 0, lambda x: x)


def test_bins_ordered_by_aspect():
    options = [3.0, 0.2, 1.0, 7.0]
    bins = bin_by_aspect_ratio(options, 2, lambda x: x)
    assert max(bins[0]) <= min(bins[1])


def test_equal_aspects_never_split():
    # Regression: the bin cap used to count raw options, so five
    # identical aspect ratios with n_bins=3 cut at zero-width "gaps"
    # and split equal-aspect options across bins.
    bins = bin_by_aspect_ratio([2.0] * 5, 3, lambda x: x)
    assert len(bins) == 1
    assert bins[0] == [2.0] * 5


def test_bin_count_capped_at_distinct_aspects():
    values = [1.0, 1.0, 2.0, 2.0, 5.0]
    bins = bin_by_aspect_ratio(values, 5, lambda x: x)
    assert [sorted(b) for b in bins] == [[1.0, 1.0], [2.0, 2.0], [5.0]]


@given(
    st.lists(
        st.floats(min_value=0.05, max_value=20.0), min_size=1, max_size=10
    ),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=4),
)
def test_ties_stay_in_one_bin_property(values, n_bins, repeats):
    # Duplicating every value must never change which values share a bin:
    # equal aspects land in the same bin regardless of multiplicity.
    bins = bin_by_aspect_ratio(values * repeats, n_bins, lambda x: x)
    for value in set(values):
        holders = [i for i, b in enumerate(bins) if value in b]
        assert len(holders) == 1


@given(
    st.lists(st.floats(min_value=0.05, max_value=20.0), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=5),
)
def test_binning_partition_property(values, n_bins):
    bins = bin_by_aspect_ratio(values, n_bins, lambda x: x)
    # Every option lands in exactly one bin.
    flattened = sorted(x for b in bins for x in b)
    assert flattened == sorted(values)
    assert all(b for b in bins)
    assert len(bins) <= n_bins
