"""The cost function of Eqs. (5)-(6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cost import CostBreakdown, layout_cost, metric_deviation
from repro.errors import OptimizationError


def test_deviation_relative_percent():
    assert metric_deviation(2.0, 1.9) == pytest.approx(5.0)
    assert metric_deviation(2.0, 2.1) == pytest.approx(5.0)


def test_deviation_zero_for_match():
    assert metric_deviation(1.0, 1.0) == 0.0


def test_zero_schematic_uses_spec_only_above():
    # Below the spec: no penalty (the Table III zero entries).
    assert metric_deviation(0.0, 0.05e-3, x_spec=0.1e-3) == 0.0
    # Above the spec: penalize the excess.
    assert metric_deviation(0.0, 0.192e-3, x_spec=0.1e-3) == pytest.approx(92.0)


def test_zero_schematic_without_spec_raises():
    with pytest.raises(OptimizationError):
        metric_deviation(0.0, 1.0)


@given(
    st.floats(min_value=0.01, max_value=1e6),
    st.floats(min_value=0.0, max_value=1e6),
)
def test_deviation_nonnegative(sch, lay):
    assert metric_deviation(sch, lay) >= 0.0


@given(st.floats(min_value=0.01, max_value=1e3))
def test_deviation_symmetric(sch):
    assert metric_deviation(sch, sch * 1.2) == pytest.approx(
        metric_deviation(sch, sch * 0.8)
    )


def test_cost_breakdown_weighted_sum():
    bd = CostBreakdown(
        deviations={"gm": 0.8, "gm_over_ctotal": 5.2, "offset": 0.0},
        weights={"gm": 0.5, "gm_over_ctotal": 0.5, "offset": 1.0},
    )
    # The paper's Table III best row: cost 3.0.
    assert bd.cost == pytest.approx(3.0)


def test_cost_breakdown_str():
    bd = CostBreakdown(deviations={"gm": 1.0}, weights={"gm": 0.5})
    assert "Cost=0.50" in str(bd)


def test_layout_cost_uses_primitive_weights(small_dp):
    ref = small_dp.schematic_reference()
    values = {k: v for k, v in ref.items()}
    bd = layout_cost(small_dp, values)
    assert bd.cost == pytest.approx(0.0, abs=1e-9)


def test_layout_cost_weight_override(small_dp):
    ref = small_dp.schematic_reference()
    values = dict(ref)
    values["gm"] = ref["gm"] * 0.9  # 10% deviation
    base = layout_cost(small_dp, values)
    boosted = layout_cost(small_dp, values, weight_override={"gm": 1.0})
    assert boosted.cost > base.cost


def test_layout_cost_missing_metric_raises(small_dp):
    with pytest.raises(OptimizationError):
        layout_cost(small_dp, {"gm": 1.0})


def test_catastrophic_offset_dominates(small_dp):
    ref = small_dp.schematic_reference()
    spec = 0.1 * small_dp.random_offset_sigma()
    values = dict(ref)
    values["offset"] = 2.0 * spec
    bd = layout_cost(small_dp, values)
    assert bd.deviations["offset"] == pytest.approx(100.0)
    assert bd.cost >= 100.0
