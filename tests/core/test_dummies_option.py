"""Dummy-finger trade-offs through the optimizer's eyes.

The paper: "Other tradeoffs arise from the use of dummies, which reduce
LOD effects, but increase area and wire parasitics."
"""

import pytest

from repro.cellgen.generator import WireConfig
from repro.core.selection import evaluate_option
from repro.devices.mosfet import MosGeometry


@pytest.fixture(scope="module")
def with_and_without(paper_dp):
    base = MosGeometry(8, 20, 6)
    plain = evaluate_option(paper_dp, base, "ABBA")
    dummied = evaluate_option(
        paper_dp, base, "ABBA", WireConfig(dummies=True)
    )
    return plain, dummied


def test_dummies_increase_area(with_and_without):
    plain, dummied = with_and_without
    assert dummied.layout.area > plain.layout.area


def test_dummies_reduce_lod_mobility_penalty(paper_dp):
    from repro.extraction.lde_extract import extract_lde

    base = MosGeometry(8, 20, 6)
    tech = paper_dp.tech
    plain = extract_lde(
        paper_dp.generate(base, "ABBA"), "MA", tech.nmos, tech
    )
    dummied = extract_lde(
        paper_dp.generate(base, "ABBA", WireConfig(dummies=True)),
        "MA",
        tech.nmos,
        tech,
    )
    assert dummied.mobility_factor > plain.mobility_factor
    # Dummies extend the diffusion edges (larger SA/SB), relaxing the
    # stress past the characterization reference — the shift can even
    # change sign, which is why it is a trade-off and not a free win.
    assert dummied.sa > plain.sa


def test_dummies_are_a_genuine_tradeoff(with_and_without):
    """Neither choice dominates: dummies change the cost, area rises."""
    plain, dummied = with_and_without
    assert dummied.cost != plain.cost
    # The optimizer could legitimately choose either; both stay finite
    # and within an order of magnitude.
    assert dummied.cost < 10 * plain.cost + 10
