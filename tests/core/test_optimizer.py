"""The PrimitiveOptimizer facade and Table-V-style accounting."""

import pytest

from repro.core import GlobalRouteInfo, PrimitiveOptimizer
from repro.core.optimizer import PAPER_SIM_TIME
from repro.devices.mosfet import MosGeometry


def test_report_structure(small_dp_report):
    report = small_dp_report
    assert report.options
    assert len(report.selected) <= 2
    assert len(report.tuned) == len(report.selected)
    assert report.best.cost <= min(o.cost for o in report.selected) + 1e-9


def test_stage_accounting(small_dp_report):
    names = [s.name for s in small_dp_report.stages]
    assert names == ["selection", "tuning"]
    assert small_dp_report.total_simulations == sum(
        s.simulations for s in small_dp_report.stages
    )
    assert small_dp_report.effective_time == 2 * PAPER_SIM_TIME


def test_selection_simulations_match_paper_structure(small_dp):
    # N configs x 3 metrics, like Table V's "20 x 3".
    opt = PrimitiveOptimizer(n_bins=2, max_wires=3)
    report = opt.optimize(
        small_dp,
        variants=[MosGeometry(8, 4, 3), MosGeometry(8, 6, 2)],
        patterns=["ABAB"],
        tune=False,
    )
    assert report.stages[0].simulations == 2 * 3


def test_placer_options_tuned(small_dp_report):
    options = small_dp_report.placer_options()
    assert options
    aspect_ratios = [o.aspect_ratio for o in options]
    assert len(set(round(a, 3) for a in aspect_ratios)) == len(options)


def test_optimize_with_routes(small_dp):
    opt = PrimitiveOptimizer(n_bins=1, max_wires=3)
    report = opt.optimize(
        small_dp,
        variants=[MosGeometry(8, 4, 3)],
        patterns=["ABAB"],
        routes=[
            GlobalRouteInfo(
                "outp", "M3", 2000.0, via_cuts=2, via_resistance=20.0,
                symmetric_with=("outn",),
            )
        ],
    )
    assert "outp" in report.port_constraints
    assert [s.name for s in report.stages] == [
        "selection",
        "tuning",
        "port_constraints",
    ]
    assert report.effective_time == 3 * PAPER_SIM_TIME  # the paper's 30 s


def test_weight_override_changes_selection(small_dp):
    # Weighting dGm higher can move the chosen option (Table IV remark).
    opt_hi = PrimitiveOptimizer(
        n_bins=1, max_wires=3, weight_override={"gm": 1.0, "gm_over_ctotal": 0.1}
    )
    report = opt_hi.optimize(
        small_dp, variants=[MosGeometry(8, 4, 3)], patterns=["ABAB"], tune=False
    )
    bd = report.best.breakdown
    assert bd.weights["gm"] == 1.0


def test_empty_report_best_raises():
    from repro.core.optimizer import OptimizationReport
    from repro.errors import OptimizationError

    with pytest.raises(OptimizationError):
        OptimizationReport(primitive_name="x").best


def test_report_summary_text(small_dp_report):
    text = small_dp_report.summary()
    assert "primitive" in text
    assert "selection" in text
    assert "->" in text
