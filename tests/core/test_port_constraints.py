"""Port-constraint generation (Algorithm 2, step 1)."""

import pytest

from repro.core.port_constraints import (
    GlobalRouteInfo,
    attach_route,
    derive_port_constraint,
    route_rc,
)
from repro.core.selection import evaluate_option
from repro.devices.mosfet import MosGeometry
from repro.errors import OptimizationError


def route(net="outp", length=2000.0, **kw):
    return GlobalRouteInfo(net=net, layer="M3", length_nm=length, **kw)


def test_route_rc_scaling(tech):
    r1, c1 = route_rc(route(), tech, 1)
    r2, c2 = route_rc(route(), tech, 2)
    assert r2 == pytest.approx(r1 / 2)
    assert c2 == pytest.approx(2 * c1)


def test_route_rc_via_contribution(tech):
    r_plain, _ = route_rc(route(), tech, 1)
    r_via, _ = route_rc(route(via_resistance=50.0, via_cuts=1), tech, 1)
    assert r_via == pytest.approx(r_plain + 50.0)


def test_route_rc_invalid_wires(tech):
    with pytest.raises(OptimizationError):
        route_rc(route(), tech, 0)


def test_attach_route_preserves_ports(small_dp, tech):
    dut = small_dp.schematic_circuit()
    wrapped = attach_route(dut, route(), tech, 2)
    assert wrapped.ports == dut.ports
    # The route resistor exists.
    assert any(e.name == "r_route_outp" for e in wrapped.elements)


def test_attach_route_symmetric_partners(small_dp, tech):
    dut = small_dp.schematic_circuit()
    wrapped = attach_route(
        dut, route(symmetric_with=("outn",)), tech, 1
    )
    names = {e.name for e in wrapped.elements}
    assert "r_route_outp" in names and "r_route_outn" in names


def test_attach_route_unknown_port(small_dp, tech):
    with pytest.raises(OptimizationError):
        attach_route(small_dp.schematic_circuit(), route(net="zz"), tech, 1)


@pytest.fixture(scope="module")
def dp_constraint(small_dp):
    option = evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABAB")
    dut = small_dp.extract(
        small_dp.generate(option.base, option.pattern), option.base
    ).build_circuit()
    constraint, sims = derive_port_constraint(
        small_dp,
        dut,
        route(net="outp", symmetric_with=("outn",), via_cuts=2,
              via_resistance=20.0),
        max_wires=6,
    )
    return constraint, sims


def test_constraint_interval_well_formed(dp_constraint):
    constraint, sims = dp_constraint
    assert constraint.w_min >= 1
    if constraint.w_max is not None:
        assert constraint.w_min <= constraint.w_max
    assert len(constraint.sweep) == 6
    assert sims == 6 * 3  # 3 metrics per wire count


def test_constraint_cost_lookup(dp_constraint):
    constraint, _ = dp_constraint
    assert constraint.cost_at(1) == constraint.sweep[0].cost
    with pytest.raises(OptimizationError):
        constraint.cost_at(99)


def test_insensitive_net_gets_wmin_one(small_dp):
    # The tail port barely reacts to route R: w_min collapses to 1.
    option = evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABAB")
    dut = small_dp.extract(
        small_dp.generate(option.base, option.pattern), option.base
    ).build_circuit()
    constraint, _ = derive_port_constraint(
        small_dp, dut, route(net="tail", length=500.0), max_wires=4
    )
    assert constraint.w_min == 1
