"""Port-constraint reconciliation (Algorithm 2, step 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.port_constraints import PortConstraint
from repro.core.reconcile import gap_range, intervals_overlap, reconcile_net
from repro.core.tuning import SweepPoint
from repro.errors import OptimizationError
from repro.runtime.failures import BAD_METRIC, FailureLog


def constraint(name, net, w_min, w_max, costs=None):
    sweep = []
    if costs:
        sweep = [SweepPoint(i + 1, c, {}) for i, c in enumerate(costs)]
    return PortConstraint(
        primitive_name=name, net=net, w_min=w_min, w_max=w_max, sweep=sweep
    )


def test_paper_example_overlap():
    # Fig. 6 net 3: DP w_min=1 unbounded, CM w_min=4 unbounded -> choose 4.
    dp = constraint("dp", "net3", 1, None)
    cm = constraint("cm", "net3", 4, None)
    result = reconcile_net("net3", [dp, cm])
    assert result.overlapped
    assert result.wires == 4
    assert result.extra_simulations == 0


def test_overlapping_bounded_intervals():
    a = constraint("a", "n", 2, 5)
    b = constraint("b", "n", 3, 6)
    result = reconcile_net("n", [a, b])
    assert result.overlapped
    assert result.wires == 3  # max of the lower bounds, inside [3, 5]


def test_disjoint_intervals_minimize_total_cost():
    costs_a = [10.0, 6.0, 3.0, 2.0, 2.5, 3.5]  # min at 4
    costs_b = [1.0, 2.0, 4.0, 7.0, 9.0, 12.0]  # min at 1
    a = constraint("a", "n", 4, 5, costs_a)
    b = constraint("b", "n", 1, 1, costs_b)
    result = reconcile_net("n", [a, b])
    assert not result.overlapped
    # Gap range [min(w_max)=1, max(w_min)=4]: totals 11, 8, 7, 9 -> pick 3.
    assert result.wires == 3
    assert result.gap_costs[3] == pytest.approx(7.0)
    assert result.extra_simulations > 0


def test_custom_cost_evaluator():
    a = constraint("a", "n", 3, 4)
    b = constraint("b", "n", 1, 1)
    result = reconcile_net("n", [a, b], cost_at=lambda c, w: float(w))
    assert result.wires == 1  # evaluator prefers fewer wires


def test_single_constraint_passthrough():
    a = constraint("a", "n", 2, 5)
    result = reconcile_net("n", [a])
    assert result.wires == 2


def test_no_constraints_raises():
    with pytest.raises(OptimizationError):
        reconcile_net("n", [])


def test_reason_records_how_wires_were_chosen():
    overlap = reconcile_net("n", [constraint("a", "n", 2, 5)])
    assert overlap.reason == "overlap"
    gap = reconcile_net(
        "n",
        [constraint("a", "n", 4, 5), constraint("b", "n", 1, 1)],
        cost_at=lambda c, w: float(w),
    )
    assert gap.reason == "gap-min"


def test_all_failed_gap_falls_back_to_max_wmin():
    # Regression: disjoint constraints whose sweeps hold no usable
    # points (every gap cost inf) used to let min() silently pick the
    # first — i.e. an arbitrary failed — wire count.
    a = constraint("a", "n", 4, 5)
    b = constraint("b", "n", 1, 1)
    failures = FailureLog()
    result = reconcile_net("n", [a, b], failures=failures)
    assert not result.overlapped
    assert result.reason == "gap-failed"
    assert result.wires == 4  # max(w_min): the congestion-friendly choice
    assert all(not math.isfinite(c) for c in result.gap_costs.values())
    # The degradation is recorded, not silent.
    assert failures.count(code=BAD_METRIC, stage="reconcile") == 1
    failure = failures.failures[0]
    assert failure.key == "reconcile:n"
    assert "fell back" in failure.message


def test_all_failed_gap_without_failure_log():
    a = constraint("a", "n", 3, 4)
    b = constraint("b", "n", 1, 1)
    result = reconcile_net(
        "n", [a, b], cost_at=lambda c, w: float("inf")
    )
    assert result.reason == "gap-failed"
    assert result.wires == 3


def test_gap_range_orientation():
    # min(w_max)=1 < max(w_min)=4 -> searched low-to-high either way.
    assert gap_range(
        [constraint("a", "n", 4, 5), constraint("b", "n", 1, 1)]
    ) == (1, 4)


def test_intervals_overlap_unbounded():
    assert intervals_overlap(
        [constraint("a", "n", 1, None), constraint("b", "n", 9, None)]
    )


def test_intervals_disjoint():
    assert not intervals_overlap(
        [constraint("a", "n", 5, 7), constraint("b", "n", 1, 2)]
    )


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=6),
            st.integers(min_value=0, max_value=4),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_overlap_choice_inside_every_interval(bounds):
    constraints = [
        constraint(f"p{i}", "n", lo, lo + extra)
        for i, (lo, extra) in enumerate(bounds)
    ]
    if intervals_overlap(constraints):
        result = reconcile_net("n", constraints)
        for c in constraints:
            assert result.wires >= c.w_min
            assert result.wires <= c.w_max
    else:
        result = reconcile_net(
            "n", constraints, cost_at=lambda c, w: abs(w - c.w_min)
        )
        lo = min(c.w_max for c in constraints)
        hi = max(c.w_min for c in constraints)
        assert min(lo, hi) <= result.wires <= max(lo, hi)
