"""Primitive selection (Algorithm 1, step 1)."""

import pytest

from repro.core.selection import (
    evaluate_option,
    evaluate_options,
    select_best_per_bin,
)
from repro.devices.mosfet import MosGeometry


def test_evaluate_single_option(small_dp):
    opt = evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABBA")
    assert opt.cost > 0
    assert opt.simulations == 3
    assert opt.pattern == "ABBA"
    assert set(opt.values) == {"gm", "gm_over_ctotal", "offset"}


def test_describe_mentions_sizing(small_dp):
    opt = evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABAB")
    text = opt.describe()
    assert "nfin=8" in text and "ABAB" in text


def test_evaluate_options_covers_patterns(small_dp):
    options = evaluate_options(
        small_dp, variants=[MosGeometry(8, 4, 3)], patterns=None
    )
    patterns = {o.pattern for o in options}
    assert "ABAB" in patterns and "AABB" in patterns
    # m=3 is odd: 1D ABBA infeasible in available_patterns.
    assert "ABBA" not in patterns


def test_evaluate_options_explicit_patterns(small_dp):
    options = evaluate_options(
        small_dp,
        variants=[MosGeometry(8, 4, 3), MosGeometry(8, 6, 2)],
        patterns=["ABAB"],
    )
    assert len(options) == 2


def test_aabb_never_selected_for_paper_dp(paper_dp):
    # At the paper's device size the gradient-induced offset makes the
    # clustered pattern uncompetitive (Table III's 101.7-cost row).
    options = evaluate_options(
        paper_dp,
        variants=[MosGeometry(8, 20, 6), MosGeometry(12, 20, 4)],
        patterns=["ABAB", "ABBA", "AABB"],
    )
    selected = select_best_per_bin(options, 2)
    assert all(o.pattern != "AABB" for o in selected)


def test_select_one_per_bin(small_dp):
    options = evaluate_options(
        small_dp,
        variants=[MosGeometry(4, 12, 2), MosGeometry(8, 6, 2), MosGeometry(12, 4, 2)],
        patterns=["ABAB"],
    )
    selected = select_best_per_bin(options, 3)
    assert len(selected) == 3
    # Each selected option is the cheapest of its bin.
    for sel in selected:
        assert sel in options


def test_selected_costs_minimal_within_bins(small_dp):
    from repro.core.binning import bin_by_aspect_ratio

    options = evaluate_options(
        small_dp,
        variants=[MosGeometry(4, 12, 2), MosGeometry(8, 6, 2), MosGeometry(12, 4, 2)],
    )
    bins = bin_by_aspect_ratio(options, 3, lambda o: o.aspect_ratio)
    selected = select_best_per_bin(options, 3)
    for group, sel in zip(bins, selected):
        assert sel.cost == min(o.cost for o in group)


def test_quality_gate_drops_unusable_bins(small_dp):
    """A bin whose best is far worse than the global best is dropped."""
    from types import SimpleNamespace

    def fake(cost, aspect):
        return SimpleNamespace(cost=cost, aspect_ratio=aspect)

    options = [
        fake(5.0, 0.2), fake(6.0, 0.25),   # bin 1 (good)
        fake(5.5, 1.0),                    # bin 2 (good)
        fake(80.0, 5.0), fake(90.0, 6.0),  # bin 3 (unusable)
    ]
    kept = select_best_per_bin(options, 3)
    costs = sorted(o.cost for o in kept)
    assert costs == [5.0, 5.5]


def test_quality_gate_keeps_global_best_always(small_dp):
    from types import SimpleNamespace

    options = [SimpleNamespace(cost=100.0, aspect_ratio=1.0)]
    kept = select_best_per_bin(options, 3)
    assert len(kept) == 1


def test_quality_allowance_is_a_parameter():
    """The absolute allowance (historically hard-coded at +5.0) is a
    knob; the default threshold 1.5*best + 5.0 is unchanged."""
    from types import SimpleNamespace

    def fake(cost, aspect):
        return SimpleNamespace(cost=cost, aspect_ratio=aspect)

    options = [
        fake(2.0, 0.2),   # bin 1: global best; threshold = 1.5*2 + abs
        fake(7.5, 1.0),   # bin 2: inside the default 8.0 threshold
        fake(9.0, 5.0),   # bin 3: outside it
    ]
    default = select_best_per_bin(options, 3)
    assert sorted(o.cost for o in default) == [2.0, 7.5]
    explicit = select_best_per_bin(options, 3, quality_abs=5.0)
    assert sorted(o.cost for o in explicit) == [2.0, 7.5]
    strict = select_best_per_bin(options, 3, quality_abs=0.0)
    assert sorted(o.cost for o in strict) == [2.0]
    lenient = select_best_per_bin(options, 3, quality_abs=10.0)
    assert sorted(o.cost for o in lenient) == [2.0, 7.5, 9.0]
