"""Primitive tuning (Algorithm 1, step 2)."""

import pytest

from repro.cellgen.generator import WireConfig
from repro.core.selection import evaluate_option
from repro.core.tuning import (
    TUNE_CHUNK,
    _untuned_straps,
    choose_stop_point,
    tune_option,
)
from repro.devices.mosfet import MosGeometry
from repro.errors import OptimizationError
from repro.runtime import EvalRuntime
from repro.runtime.faults import FaultSpec, inject


class _Terminal:
    def __init__(self, nets):
        self.nets = nets


def test_stop_at_minimum():
    idx, reason = choose_stop_point([5.0, 4.0, 3.5, 3.8, 4.5])
    assert idx == 2
    assert reason == "minimum"


def test_stop_at_curvature_for_monotone():
    # Monotone decreasing: stop where the discrete second difference
    # (curvature) peaks — the knee of the curve.
    costs = [10.0, 6.0, 4.0, 3.8, 3.7, 3.65]
    idx, reason = choose_stop_point(costs)
    assert reason == "curvature"
    assert idx == 1  # second difference 2.0 at index 1 beats 1.8 at 2
    # A curve with its knee later stops later.
    idx2, reason2 = choose_stop_point([10.0, 9.5, 9.0, 5.0, 4.8, 4.7])
    assert reason2 == "curvature"
    assert idx2 == 3


def test_stop_short_curves():
    idx, reason = choose_stop_point([3.0, 2.0])
    assert idx == 1
    assert reason == "exhausted"


def test_stop_empty_raises():
    with pytest.raises(OptimizationError):
        choose_stop_point([])


def test_tuning_never_worsens_cost(small_dp):
    option = evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABAB")
    result = tune_option(small_dp, option, max_wires=4)
    assert result.option.cost <= option.cost + 1e-9
    assert result.simulations > 0


def test_tuning_records_sweeps(small_dp):
    option = evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABAB")
    result = tune_option(small_dp, option, max_wires=3)
    names = {s.terminal for s in result.sweeps}
    assert names == {"source", "drain"}
    for sweep in result.sweeps:
        assert sweep.points
        assert sweep.chosen >= 1


def test_tuning_wire_config_applied(small_dp):
    option = evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABAB")
    result = tune_option(small_dp, option, max_wires=4)
    by_name = {s.terminal: s for s in result.sweeps}
    assert result.option.wires.straps("tail") == by_name["source"].chosen


def test_untuned_straps_skips_netless_terminals():
    # Regression: the failed-sweep fallback indexed ``nets[0]`` of the
    # group's first terminal, an IndexError for placeholder terminals
    # that touch no nets.
    wires = WireConfig().with_straps("tail", 3)
    assert _untuned_straps(wires, [_Terminal([])]) == 1
    assert _untuned_straps(wires, [_Terminal([]), _Terminal(["tail"])]) == 3
    assert _untuned_straps(wires, [_Terminal(["tail"])]) == 3
    assert _untuned_straps(WireConfig(), [_Terminal(["tail"])]) == 1


def test_fully_failed_sweep_keeps_untuned_wires(small_dp):
    # Regression: a sweep whose every point failed used to report the
    # TerminalSweep dataclass default (chosen=1) even when the option
    # arrived pre-tuned with more straps.
    option = evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABAB")
    option.wires = option.wires.with_straps("tail", 2)
    with inject(FaultSpec(bad_metric_rate=1.0)):
        result = tune_option(small_dp, option, max_wires=3)
    by_name = {s.terminal: s for s in result.sweeps}
    assert all(s.stopped_by == "failed" for s in result.sweeps)
    assert by_name["source"].chosen == 2  # the pre-tuned strap count
    # The untuned option survives as the result.
    assert result.option is option


class _RecordingRuntime(EvalRuntime):
    """EvalRuntime that logs the width of every tuning dispatch."""

    def __init__(self):
        super().__init__()
        self.widths: list[int] = []

    def evaluate_batch(self, tasks, stage):
        if stage == "tuning":
            self.widths.append(len(tasks))
        return super().evaluate_batch(tasks, stage)


def test_singleton_sweeps_dispatch_in_chunks(small_dp):
    # Eager runtimes (--batch, worker pools) evaluate a whole dispatch
    # up front, so the sweep must never hand them wire counts the
    # early-stop break would leave unconsumed: dispatches are chunked,
    # bounding overshoot to the current chunk.
    option = evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABAB")
    runtime = _RecordingRuntime()
    result = tune_option(small_dp, option, max_wires=8, runtime=runtime)
    assert runtime.widths
    assert all(width <= TUNE_CHUNK for width in runtime.widths)
    consumed = sum(len(s.points) for s in result.sweeps)
    dispatched = sum(runtime.widths)
    assert dispatched <= consumed + (TUNE_CHUNK - 1) * len(result.sweeps)
    # Chunking must not move the outcome: chosen wires match the
    # single-batch reference run.
    reference = tune_option(
        small_dp,
        evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABAB"),
        max_wires=8,
    )
    assert [s.chosen for s in result.sweeps] == [
        s.chosen for s in reference.sweeps
    ]


def test_correlated_terminals_swept_jointly(tech):
    from repro.primitives import CascodeCurrentSource

    prim = CascodeCurrentSource(tech, base_fins=48)
    option = evaluate_option(prim, MosGeometry(8, 6, 1), "ABAB")
    result = tune_option(prim, option, max_wires=2)
    joint = [s for s in result.sweeps if "+" in s.terminal]
    assert len(joint) == 1
    assert joint[0].stopped_by == "joint"
    # A 2-terminal joint sweep at limit 2 explores 4 combinations.
    assert len(joint[0].points) == 4
