"""LdeContext composition."""

import pytest

from repro.devices.lde import LdeContext


def test_ideal_is_neutral():
    ctx = LdeContext.ideal()
    assert ctx.vth_shift == 0.0
    assert ctx.mobility_factor == 1.0


def test_combined_shifts_add():
    a = LdeContext(vth_shift=0.01, mobility_factor=0.95)
    b = LdeContext(vth_shift=0.02, mobility_factor=0.90)
    c = a.combined_with(b)
    assert c.vth_shift == pytest.approx(0.03)
    assert c.mobility_factor == pytest.approx(0.855)


def test_combined_keeps_min_distances():
    a = LdeContext(sa=100.0, sb=200.0, sc=500.0)
    b = LdeContext(sa=150.0, sb=50.0, sc=900.0)
    c = a.combined_with(b)
    assert c.sa == 100.0
    assert c.sb == 50.0
    assert c.sc == 500.0


def test_combined_with_ideal_is_identity():
    a = LdeContext(vth_shift=0.005, mobility_factor=0.97)
    c = a.combined_with(LdeContext.ideal())
    assert c.vth_shift == a.vth_shift
    assert c.mobility_factor == a.mobility_factor
