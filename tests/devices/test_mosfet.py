"""The EKV FinFET model: physics sanity and analytic derivatives.

The derivative checks are the load-bearing tests here: the Newton solver
trusts ``gm``/``gds`` to be the exact partials of ``ids``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices.lde import LdeContext
from repro.devices.mosfet import (
    MosGeometry,
    mos_small_signal,
    resolve_params,
)
from repro.errors import NetlistError
from repro.tech import Technology

TECH = Technology.default()


def nmos_params(nfin=8, nf=4, m=1, lde=None, **kw):
    return resolve_params(
        TECH.nmos, TECH.rules, MosGeometry(nfin, nf, m), lde, **kw
    )


def pmos_params(nfin=8, nf=4, m=1):
    return resolve_params(TECH.pmos, TECH.rules, MosGeometry(nfin, nf, m))


# --- geometry -----------------------------------------------------------


def test_geometry_totals():
    g = MosGeometry(8, 20, 6)
    assert g.nfins_total == 960


def test_geometry_scaled():
    assert MosGeometry(8, 4, 2).scaled(3).nfins_total == 8 * 4 * 6


def test_geometry_rejects_zero():
    with pytest.raises(NetlistError):
        MosGeometry(0, 1, 1)
    with pytest.raises(NetlistError):
        MosGeometry(1, 1, 1).scaled(0)


# --- DC physics ----------------------------------------------------------


def test_cutoff_current_negligible():
    out = mos_small_signal(nmos_params(), vg=0.0, vd=0.8, vs=0.0)
    assert abs(out["id"]) < 1e-7


def test_saturation_current_positive():
    out = mos_small_signal(nmos_params(), vg=0.6, vd=0.8, vs=0.0)
    assert out["id"] > 1e-5


def test_current_increases_with_vgs():
    p = nmos_params()
    i1 = mos_small_signal(p, 0.4, 0.8, 0.0)["id"]
    i2 = mos_small_signal(p, 0.6, 0.8, 0.0)["id"]
    assert i2 > i1 > 0


def test_current_scales_with_fins():
    small = mos_small_signal(nmos_params(8, 4, 1), 0.6, 0.8, 0.0)["id"]
    big = mos_small_signal(nmos_params(8, 4, 4), 0.6, 0.8, 0.0)["id"]
    assert big == pytest.approx(4 * small, rel=1e-9)


def test_zero_vds_zero_current():
    out = mos_small_signal(nmos_params(), vg=0.6, vd=0.0, vs=0.0)
    assert out["id"] == pytest.approx(0.0, abs=1e-15)


def test_symmetry_swap_drain_source():
    p = nmos_params()
    fwd = mos_small_signal(p, vg=0.6, vd=0.3, vs=0.0)["id"]
    rev = mos_small_signal(p, vg=0.3, vd=-0.3, vs=0.0)  # vd < vs
    # With gate-to-source(=old drain) 0.6-0.3... construct true mirror:
    mirrored = mos_small_signal(p, vg=0.6, vd=0.0, vs=0.3)["id"]
    assert mirrored == pytest.approx(-fwd, rel=1e-9)


def test_pmos_mirror_of_nmos_sign():
    out = mos_small_signal(pmos_params(), vg=0.2, vd=0.0, vs=0.8)
    # PMOS with source high and gate low conducts; drain current is
    # negative (current flows out of the drain node).
    assert out["id"] < -1e-6


def test_clm_increases_current_with_vds():
    p = nmos_params()
    i1 = mos_small_signal(p, 0.6, 0.5, 0.0)["id"]
    i2 = mos_small_signal(p, 0.6, 0.8, 0.0)["id"]
    assert i2 > i1


def test_subthreshold_slope_reasonable():
    p = nmos_params()
    i1 = mos_small_signal(p, 0.15, 0.8, 0.0)["id"]
    i2 = mos_small_signal(p, 0.25, 0.8, 0.0)["id"]
    decade_mv = 100.0 / np.log10(i2 / i1)
    # 60mV/dec ideal; slope factor 1.15 gives ~68mV/dec.
    assert 55.0 < decade_mv < 90.0


def test_lde_vth_shift_reduces_current():
    base = mos_small_signal(nmos_params(), 0.5, 0.8, 0.0)["id"]
    shifted = mos_small_signal(
        nmos_params(lde=LdeContext(vth_shift=0.02)), 0.5, 0.8, 0.0
    )["id"]
    assert shifted < base


def test_lde_mobility_scales_current():
    base = mos_small_signal(nmos_params(), 0.6, 0.8, 0.0)["id"]
    degraded = mos_small_signal(
        nmos_params(lde=LdeContext(mobility_factor=0.9)), 0.6, 0.8, 0.0
    )["id"]
    assert degraded == pytest.approx(0.9 * base, rel=0.02)


def test_gms_equals_negative_sum():
    out = mos_small_signal(nmos_params(), 0.55, 0.6, 0.1)
    assert out["gms"] == pytest.approx(-(out["gm"] + out["gds"]), rel=1e-12)


# --- derivative correctness (property-based) --------------------------------


@settings(max_examples=60, deadline=None)
@given(
    vg=st.floats(min_value=-0.2, max_value=1.0),
    vd=st.floats(min_value=-0.9, max_value=0.9),
    vs=st.floats(min_value=-0.3, max_value=0.5),
    polarity=st.sampled_from(["n", "p"]),
)
def test_analytic_derivatives_match_finite_difference(vg, vd, vs, polarity):
    params = nmos_params() if polarity == "n" else pmos_params()
    h = 1e-6

    def ids(vg_, vd_, vs_):
        return mos_small_signal(params, vg_, vd_, vs_)["id"]

    out = mos_small_signal(params, vg, vd, vs)
    gm_fd = (ids(vg + h, vd, vs) - ids(vg - h, vd, vs)) / (2 * h)
    gds_fd = (ids(vg, vd + h, vs) - ids(vg, vd - h, vs)) / (2 * h)
    scale = max(abs(out["gm"]), abs(out["gds"]), 1e-9)
    assert out["gm"] == pytest.approx(gm_fd, rel=2e-3, abs=2e-4 * scale)
    assert out["gds"] == pytest.approx(gds_fd, rel=2e-3, abs=2e-4 * scale)


@settings(max_examples=30, deadline=None)
@given(
    vg=st.floats(min_value=0.0, max_value=0.8),
    vd=st.floats(min_value=0.0, max_value=0.8),
)
def test_capacitances_positive_and_bounded(vg, vd):
    params = nmos_params()
    out = mos_small_signal(params, vg, vd, 0.0)
    for key in ("cgs", "cgd", "cgb", "cdb", "csb"):
        assert out[key] >= 0
        assert out[key] < 1e-12  # under a picofarad for this size


def test_cgs_larger_in_saturation_than_cutoff():
    p = nmos_params()
    sat = mos_small_signal(p, 0.7, 0.8, 0.0)["cgs"]
    off = mos_small_signal(p, 0.0, 0.8, 0.0)["cgs"]
    assert sat > off


def test_junction_overrides():
    p = nmos_params(cdb_override=1e-15, csb_override=2e-15)
    out = mos_small_signal(p, 0.5, 0.5, 0.0)
    assert out["cdb"] == pytest.approx(1e-15)
    assert out["csb"] == pytest.approx(2e-15)


def test_sigma_vth_scales_with_fins():
    small = nmos_params(8, 1, 1)
    large = nmos_params(8, 4, 4)
    assert large.sigma_vth == pytest.approx(small.sigma_vth / 4.0)
