"""Passive device models."""

import math

import pytest

from repro.devices.passives import MomCapacitor, PolyResistor, SpiralInductor
from repro.errors import NetlistError


def test_resistor_effective_resistance():
    r = PolyResistor(value=10e3, segments=4, contact_resistance=5.0)
    assert r.effective_resistance == pytest.approx(10e3 + 40.0)


def test_resistor_parasitic_scales_with_segments():
    r1 = PolyResistor(value=1e3, segments=1)
    r4 = PolyResistor(value=1e3, segments=4)
    assert r4.parasitic_capacitance == pytest.approx(4 * r1.parasitic_capacitance)


def test_resistor_validation():
    with pytest.raises(NetlistError):
        PolyResistor(value=0.0)
    with pytest.raises(NetlistError):
        PolyResistor(value=1e3, segments=0)


def test_capacitor_esr_from_q():
    c = MomCapacitor(value=100e-15, q_factor=50.0, f_ref=1e9)
    expected = 1.0 / (2 * math.pi * 1e9 * 100e-15 * 50.0)
    assert c.series_resistance == pytest.approx(expected)


def test_capacitor_bottom_plate():
    c = MomCapacitor(value=100e-15, bottom_plate_ratio=0.05)
    assert c.bottom_plate_capacitance == pytest.approx(5e-15)


def test_capacitor_validation():
    with pytest.raises(NetlistError):
        MomCapacitor(value=-1e-15)


def test_inductor_esr_from_q():
    ind = SpiralInductor(value=1e-9, q_factor=10.0, f_ref=5e9)
    expected = 2 * math.pi * 5e9 * 1e-9 / 10.0
    assert ind.series_resistance == pytest.approx(expected)


def test_inductor_validation():
    with pytest.raises(NetlistError):
        SpiralInductor(value=1e-9, q_factor=0.0)
