"""LDE extraction: LOD, WPE, gradients, junction sharing."""

import pytest

from repro.cellgen import CellDevice, CellSpec, WireConfig, generate_layout
from repro.devices.mosfet import MosGeometry
from repro.errors import ExtractionError
from repro.extraction.lde_extract import extract_lde, junction_capacitances


def dp_spec(geo=MosGeometry(8, 8, 4)):
    return CellSpec(
        name="dp",
        devices=(
            CellDevice("MA", "n", geo, {"d": "outp", "g": "inp", "s": "tail"}),
            CellDevice("MB", "n", geo, {"d": "outn", "g": "inn", "s": "tail"}),
        ),
        matched_group=("MA", "MB"),
        port_nets=("inp", "inn", "outp", "outn", "tail"),
        symmetric_pairs=(("outp", "outn"), ("inp", "inn")),
    )


def test_vth_shift_nonzero(tech):
    lay = generate_layout(dp_spec(), "ABAB", tech)
    ctx = extract_lde(lay, "MA", tech.nmos, tech)
    assert ctx.vth_shift != 0.0
    assert 0.5 <= ctx.mobility_factor <= 1.0


def test_unknown_device_raises(tech):
    lay = generate_layout(dp_spec(), "ABAB", tech)
    with pytest.raises(ExtractionError):
        extract_lde(lay, "MX", tech.nmos, tech)


def test_abba_matches_devices_exactly(tech):
    lay = generate_layout(dp_spec(), "ABBA", tech)
    a = extract_lde(lay, "MA", tech.nmos, tech)
    b = extract_lde(lay, "MB", tech.nmos, tech)
    assert a.vth_shift == pytest.approx(b.vth_shift, abs=1e-9)


def test_aabb_mismatches_devices(tech):
    lay = generate_layout(dp_spec(), "AABB", tech)
    a = extract_lde(lay, "MA", tech.nmos, tech)
    b = extract_lde(lay, "MB", tech.nmos, tech)
    assert abs(a.vth_shift - b.vth_shift) > 1e-5


def test_aabb_worse_than_abab_mismatch(tech):
    spec = dp_spec()
    lay_abab = generate_layout(spec, "ABAB", tech)
    lay_aabb = generate_layout(spec, "AABB", tech)
    mm_abab = abs(
        extract_lde(lay_abab, "MA", tech.nmos, tech).vth_shift
        - extract_lde(lay_abab, "MB", tech.nmos, tech).vth_shift
    )
    mm_aabb = abs(
        extract_lde(lay_aabb, "MA", tech.nmos, tech).vth_shift
        - extract_lde(lay_aabb, "MB", tech.nmos, tech).vth_shift
    )
    assert mm_aabb > mm_abab


def test_dummies_reduce_lod_shift(tech):
    spec = dp_spec()
    plain = generate_layout(spec, "ABAB", tech)
    dummied = generate_layout(spec, "ABAB", tech, WireConfig(dummies=True))
    shift_plain = extract_lde(plain, "MA", tech.nmos, tech)
    shift_dummy = extract_lde(dummied, "MA", tech.nmos, tech)
    # Dummies extend the diffusion: higher mobility factor (less stress).
    assert shift_dummy.mobility_factor > shift_plain.mobility_factor


def test_more_fingers_less_lod(tech):
    few = generate_layout(dp_spec(MosGeometry(8, 4, 8)), "ABAB", tech)
    many = generate_layout(dp_spec(MosGeometry(8, 16, 2)), "ABAB", tech)
    mu_few = extract_lde(few, "MA", tech.nmos, tech).mobility_factor
    mu_many = extract_lde(many, "MA", tech.nmos, tech).mobility_factor
    assert mu_many > mu_few  # long diffusion islands relax the stress


def test_no_lde_technology_still_has_gradient(tech_no_lde):
    lay = generate_layout(dp_spec(), "AABB", tech_no_lde)
    a = extract_lde(lay, "MA", tech_no_lde.nmos, tech_no_lde)
    b = extract_lde(lay, "MB", tech_no_lde.nmos, tech_no_lde)
    assert a.mobility_factor == 1.0
    # Gradient-induced mismatch survives the LDE ablation.
    assert abs(a.vth_shift - b.vth_shift) > 0


# --- junction capacitances -------------------------------------------------


def test_junctions_smaller_than_unshared(tech):
    lay = generate_layout(dp_spec(), "ABAB", tech)
    cdb, csb = junction_capacitances(lay, "MA", tech.nmos)
    unshared = tech.nmos.cj_per_fin * 8 * 8 * 4
    assert cdb < unshared
    assert csb < unshared


def test_sources_have_more_junction_than_drains(tech):
    # Even finger counts put sources on both unit ends (full-size caps).
    lay = generate_layout(dp_spec(), "ABAB", tech)
    cdb, csb = junction_capacitances(lay, "MA", tech.nmos)
    assert csb > cdb


def test_dummies_shrink_end_junctions(tech):
    spec = dp_spec()
    plain = generate_layout(spec, "ABAB", tech)
    dummied = generate_layout(spec, "ABAB", tech, WireConfig(dummies=True))
    _, csb_plain = junction_capacitances(plain, "MA", tech.nmos)
    _, csb_dummy = junction_capacitances(dummied, "MA", tech.nmos)
    assert csb_dummy < csb_plain


def test_junction_unknown_device(tech):
    lay = generate_layout(dp_spec(), "ABAB", tech)
    with pytest.raises(ExtractionError):
        junction_capacitances(lay, "MX", tech.nmos)
