"""Extracted-netlist construction."""

import pytest

from repro.cellgen import CellDevice, CellSpec, generate_layout
from repro.devices.mosfet import MosGeometry
from repro.extraction import extract_primitive
from repro.spice import CompiledCircuit, dc_operating_point
from repro.spice.elements import Mosfet, Resistor


def dp_spec(geo=MosGeometry(8, 8, 2)):
    return CellSpec(
        name="dp",
        devices=(
            CellDevice("MA", "n", geo, {"d": "outp", "g": "inp", "s": "tail"}),
            CellDevice("MB", "n", geo, {"d": "outn", "g": "inn", "s": "tail"}),
        ),
        matched_group=("MA", "MB"),
        port_nets=("inp", "inn", "outp", "outn", "tail"),
        symmetric_pairs=(("outp", "outn"), ("inp", "inn")),
    )


@pytest.fixture(scope="module")
def extracted(tech):
    spec = dp_spec()
    return extract_primitive(generate_layout(spec, "ABAB", tech), spec, tech)


def test_extraction_covers_all(extracted):
    assert set(extracted.device_lde) == {"MA", "MB"}
    assert set(extracted.device_junctions) == {"MA", "MB"}
    assert {"inp", "inn", "outp", "outn", "tail"} <= set(extracted.net_parasitics)


def test_circuit_ports(extracted):
    circuit = extracted.build_circuit()
    assert circuit.ports == ["inp", "inn", "outp", "outn", "tail"]


def test_circuit_has_trunk_and_branch_resistors(extracted):
    circuit = extracted.build_circuit()
    names = [e.name for e in circuit.elements if isinstance(e, Resistor)]
    assert "rt_tail" in names
    assert "rb_tail_MA.s" in names
    assert "rb_tail_MB.s" in names


def test_devices_carry_lde_and_junction_overrides(extracted):
    circuit = extracted.build_circuit()
    ma = circuit.element("MA")
    assert isinstance(ma, Mosfet)
    assert ma.lde.vth_shift == extracted.device_lde["MA"].vth_shift
    assert ma.cdb_override == extracted.device_junctions["MA"][0]


def test_device_terminals_on_branch_nodes(extracted):
    circuit = extracted.build_circuit()
    ma = circuit.element("MA")
    assert ma.s == "tail__MA.s"
    assert ma.d == "outp__MA.d"
    assert ma.g == "inp__MA.g"


def test_extracted_circuit_simulates(tech, extracted):
    # Wrap with bias sources and check the DC point is sane.
    tb = extracted.build_circuit().copy("tb")
    tb.add_vsource("vp", "inp", "0", 0.55)
    tb.add_vsource("vn", "inn", "0", 0.55)
    tb.add_vsource("vop", "outp", "0", 0.6)
    tb.add_vsource("von", "outn", "0", 0.6)
    tb.add_isource("it", "tail", "0", 50e-6)
    op = dc_operating_point(CompiledCircuit(tb, tech.rules))
    # The tail current splits between the matched halves.
    assert -op.i("vop") == pytest.approx(25e-6, rel=0.05)
    assert -op.i("vop") - op.mos("MA")["id"] == pytest.approx(0.0, abs=1e-7)


def test_summary_structure(extracted):
    info = extracted.summary()
    assert info["pattern"] == "ABAB"
    assert "tail" in info["nets"]
    assert "MA" in info["devices"]
