"""Power-net extraction behavior."""

import pytest

from repro.cellgen import CellDevice, CellSpec, generate_layout
from repro.devices.mosfet import MosGeometry
from repro.extraction.rc import MIN_RESISTANCE, extract_net_parasitics


def cell(tech):
    spec = CellSpec(
        name="inv",
        devices=(
            CellDevice("MP", "p", MosGeometry(8, 6, 2),
                       {"d": "out", "g": "in", "s": "vdd!", "b": "vdd!"}),
            CellDevice("MN", "n", MosGeometry(8, 6, 2),
                       {"d": "out", "g": "in", "s": "0"}),
        ),
        matched_group=("MP", "MN"),
        port_nets=("in", "out", "vdd!"),
    )
    return generate_layout(spec, "ABAB", tech), spec


def test_power_trunk_near_ideal(tech):
    layout, _ = cell(tech)
    gnd = extract_net_parasitics(layout, "0", tech)
    vdd = extract_net_parasitics(layout, "vdd!", tech)
    assert gnd.r_trunk == MIN_RESISTANCE
    assert vdd.r_trunk == MIN_RESISTANCE


def test_signal_trunk_resistive(tech):
    layout, _ = cell(tech)
    out = extract_net_parasitics(layout, "out", tech)
    assert out.r_trunk > 10 * MIN_RESISTANCE


def test_power_branches_still_resistive(tech):
    """Local supply mesh resistance (in-cell IR drop) stays modeled."""
    layout, _ = cell(tech)
    gnd = extract_net_parasitics(layout, "0", tech)
    assert gnd.branch("MN", "s") > 1.0


def test_supply_ir_drop_visible_in_circuit(tech):
    """The assembled inverter sees a real source-side IR drop."""
    from repro.extraction import extract_primitive
    from repro.spice import CompiledCircuit, dc_operating_point

    layout, spec = cell(tech)
    dut = extract_primitive(layout, spec, tech).build_circuit()
    tb = dut.copy("tb")
    tb.add_vsource("vdd", "vdd!", "0", tech.vdd)
    tb.add_vsource("vin", "in", "0", tech.vdd / 2.0)
    tb.add_vsource("vout", "out", "0", tech.vdd / 2.0)
    op = dc_operating_point(CompiledCircuit(tb, tech.rules))
    source_node = op.v("0__MN.s")
    assert source_node > 0.0  # lifted off ground by the mesh resistance
    assert source_node < 0.05  # but only by millivolts
