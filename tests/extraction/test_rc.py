"""Wire RC extraction: sensitivities the optimizer relies on."""

import pytest

from repro.cellgen import CellDevice, CellSpec, WireConfig, generate_layout
from repro.devices.mosfet import MosGeometry
from repro.errors import ExtractionError
from repro.extraction.rc import extract_all_nets, extract_net_parasitics


def dp_spec(geo=MosGeometry(8, 8, 4)):
    return CellSpec(
        name="dp",
        devices=(
            CellDevice("MA", "n", geo, {"d": "outp", "g": "inp", "s": "tail"}),
            CellDevice("MB", "n", geo, {"d": "outn", "g": "inn", "s": "tail"}),
        ),
        matched_group=("MA", "MB"),
        port_nets=("inp", "inn", "outp", "outn", "tail"),
        symmetric_pairs=(("outp", "outn"), ("inp", "inn")),
    )


@pytest.fixture(scope="module")
def dp_layout(tech):
    return generate_layout(dp_spec(), "ABAB", tech)


def test_all_wired_nets_extract(tech, dp_layout):
    nets = extract_all_nets(dp_layout, tech)
    assert {"inp", "inn", "outp", "outn", "tail"} <= set(nets)


def test_parasitics_positive(tech, dp_layout):
    par = extract_net_parasitics(dp_layout, "tail", tech)
    assert par.r_trunk > 0
    assert par.c_wire > 0
    assert all(r > 0 for r in par.r_branches.values())


def test_tail_has_branches_for_both_sources(tech, dp_layout):
    par = extract_net_parasitics(dp_layout, "tail", tech)
    assert par.branch("MA", "s") > 0
    assert par.branch("MB", "s") > 0


def test_missing_branch_raises(tech, dp_layout):
    par = extract_net_parasitics(dp_layout, "tail", tech)
    with pytest.raises(ExtractionError):
        par.branch("MA", "d")  # drains are not on the tail net


def test_unknown_net_raises(tech, dp_layout):
    with pytest.raises(ExtractionError):
        extract_net_parasitics(dp_layout, "bogus", tech)


def test_parallel_straps_reduce_branch_resistance(tech):
    spec = dp_spec()
    base = extract_net_parasitics(
        generate_layout(spec, "ABAB", tech), "tail", tech
    )
    tuned = extract_net_parasitics(
        generate_layout(spec, "ABAB", tech, WireConfig(parallel={"tail": 4})),
        "tail",
        tech,
    )
    assert tuned.branch("MA", "s") < base.branch("MA", "s")
    assert tuned.c_wire > base.c_wire  # the R/C trade-off


def test_more_rows_reduce_branch_resistance(tech):
    few_rows = extract_net_parasitics(
        generate_layout(dp_spec(MosGeometry(16, 8, 2)), "ABAB", tech), "tail", tech
    )
    many_rows = extract_net_parasitics(
        generate_layout(dp_spec(MosGeometry(4, 8, 8)), "ABAB", tech), "tail", tech
    )
    assert many_rows.branch("MA", "s") < few_rows.branch("MA", "s")


def test_aabb_clustering_raises_branch_resistance(tech):
    spec = dp_spec()
    abab = extract_net_parasitics(
        generate_layout(spec, "ABAB", tech), "tail", tech
    )
    aabb = extract_net_parasitics(
        generate_layout(spec, "AABB", tech), "tail", tech
    )
    # Each device spans half the rows in AABB: fewer parallel paths.
    assert aabb.branch("MA", "s") > abab.branch("MA", "s")


def test_symmetric_nets_extract_identically(tech, dp_layout):
    outp = extract_net_parasitics(dp_layout, "outp", tech)
    outn = extract_net_parasitics(dp_layout, "outn", tech)
    assert outp.branch("MA", "d") == pytest.approx(
        outn.branch("MB", "d"), rel=0.05
    )
    assert outp.c_wire == pytest.approx(outn.c_wire, rel=0.05)
