"""Automatic primitive recognition on flat netlists."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.flow.annotate import annotation_report, recognize_primitives
from repro.spice import Circuit


def flat_ota(tech):
    """The 5T OTA as a flat transistor netlist."""
    c = Circuit("flat_ota")
    g = MosGeometry(8, 4, 2)
    c.add_mosfet("m1", "nx", "vinp", "ntail", "0", tech.nmos, g)
    c.add_mosfet("m2", "vout", "vinn", "ntail", "0", tech.nmos, g)
    c.add_mosfet("m3", "nx", "nx", "vdd", "vdd", tech.pmos, g)  # diode
    c.add_mosfet("m4", "vout", "nx", "vdd", "vdd", tech.pmos, g)
    c.add_mosfet("m5", "ntail", "vbn", "0", "0", tech.nmos, g)
    return c


def by_family(prims):
    out = {}
    for p in prims:
        out.setdefault(p.family, []).append(p)
    return out


def test_ota_annotation(tech):
    prims = by_family(recognize_primitives(flat_ota(tech)))
    assert len(prims["differential_pair"]) == 1
    dp = prims["differential_pair"][0]
    assert set(dp.devices) == {"m1", "m2"}
    assert dp.nets["tail"] == "ntail"
    assert len(prims["current_mirror"]) == 1
    cm = prims["current_mirror"][0]
    assert cm.devices[0] == "m3"  # the diode is the reference
    assert prims["current_source"][0].devices == ("m5",)


def test_every_device_annotated_once(tech):
    prims = recognize_primitives(flat_ota(tech))
    members = [d for p in prims for d in p.devices]
    assert sorted(members) == ["m1", "m2", "m3", "m4", "m5"]


def test_cross_coupled_recognized_before_dp(tech):
    c = Circuit("xcp")
    g = MosGeometry(8, 2, 1)
    c.add_mosfet("ma", "outp", "outn", "tail", "0", tech.nmos, g)
    c.add_mosfet("mb", "outn", "outp", "tail", "0", tech.nmos, g)
    prims = recognize_primitives(c)
    assert prims[0].family == "cross_coupled_pair"


def test_ratioed_mirror_groups_all_outputs(tech):
    c = Circuit("cm8")
    g = MosGeometry(8, 2, 1)
    c.add_mosfet("mref", "nin", "nin", "0", "0", tech.nmos, g)
    for k in range(3):
        c.add_mosfet(f"mo{k}", f"out{k}", "nin", "0", "0", tech.nmos, g)
    prims = recognize_primitives(c)
    assert len(prims) == 1
    assert len(prims[0].devices) == 4


def test_inverter_recognized(tech):
    c = Circuit("inv")
    g = MosGeometry(8, 2, 1)
    c.add_mosfet("mp", "out", "in", "vdd", "vdd", tech.pmos, g)
    c.add_mosfet("mn", "out", "in", "0", "0", tech.nmos, g)
    prims = recognize_primitives(c)
    assert prims[0].family == "inverter"
    assert prims[0].nets == {"in": "in", "out": "out"}


def test_diode_load_fallback(tech):
    c = Circuit("dl")
    c.add_mosfet("md", "out", "out", "0", "0", tech.nmos, MosGeometry(8))
    prims = recognize_primitives(c)
    assert prims[0].family == "diode_load"


def test_polarity_mismatch_never_pairs(tech):
    c = Circuit("np")
    g = MosGeometry(8, 2, 1)
    # Same source net but opposite polarity: not a DP.
    c.add_mosfet("ma", "o1", "i1", "s", "0", tech.nmos, g)
    c.add_mosfet("mb", "o2", "i2", "s", "vdd", tech.pmos, g)
    prims = recognize_primitives(c)
    assert all(p.family != "differential_pair" for p in prims)


def test_report_format(tech):
    text = annotation_report(flat_ota(tech))
    assert "differential_pair" in text
    assert "m1/m2" in text


def test_empty_circuit_annotates_empty(tech):
    assert recognize_primitives(Circuit("empty")) == []


def test_pmos_pair_recognized(tech):
    c = Circuit("pdp")
    g = MosGeometry(8, 2, 1)
    c.add_mosfet("ma", "op", "ip", "tail", "vdd", tech.pmos, g)
    c.add_mosfet("mb", "on", "in_", "tail", "vdd", tech.pmos, g)
    prims = recognize_primitives(c)
    assert prims[0].family == "differential_pair"


def test_ground_sourced_pair_not_a_dp(tech):
    # Two FETs sharing *ground* as source are not a differential pair.
    c = Circuit("nodp")
    g = MosGeometry(8, 2, 1)
    c.add_mosfet("ma", "o1", "i1", "0", "0", tech.nmos, g)
    c.add_mosfet("mb", "o2", "i2", "0", "0", tech.nmos, g)
    prims = recognize_primitives(c)
    assert all(p.family != "differential_pair" for p in prims)
