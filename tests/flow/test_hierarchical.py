"""End-to-end flow on the CS amplifier (small, fast configuration).

The headline reproduction claim lives here: this work beats the
conventional baseline and approaches the schematic, for the same circuit
and the same measurement.
"""

import pytest

from repro.circuits import CommonSourceAmpCircuit
from repro.errors import OptimizationError
from repro.flow import HierarchicalFlow


@pytest.fixture(scope="module")
def circuit(tech):
    return CommonSourceAmpCircuit(tech, i_bias=100e-6, stage_fins=48, load_fins=72)


@pytest.fixture(scope="module")
def flow(tech):
    return HierarchicalFlow(tech, n_bins=2, max_wires=4, placer_iterations=200)


@pytest.fixture(scope="module")
def schematic_metrics(circuit):
    return circuit.measure(circuit.schematic())


@pytest.fixture(scope="module")
def this_work(flow, circuit):
    return flow.run(circuit, flavor="this_work")


@pytest.fixture(scope="module")
def conventional(flow, circuit):
    return flow.run(circuit, flavor="conventional")


def test_flavor_validation(flow, circuit):
    with pytest.raises(OptimizationError):
        flow.run(circuit, flavor="bogus")


def test_this_work_produces_choices_for_all_bindings(this_work, circuit):
    assert set(this_work.choices) == {b.name for b in circuit.bindings()}
    assert this_work.assembled is not None
    assert this_work.placement is not None


def test_this_work_has_optimization_reports(this_work):
    assert this_work.reports
    for report in this_work.reports.values():
        assert report.best.cost >= 0


def test_conventional_skips_optimization(conventional):
    assert not conventional.reports
    assert all(b.n_wires == 1 for b in conventional.route_budgets.values())


def test_headline_ordering(schematic_metrics, this_work, conventional):
    """Schematic >= this work > conventional (Table VI's structure)."""
    sch = schematic_metrics
    tw = this_work.metrics
    conv = conventional.metrics
    # Current: this work recovers most of the schematic current.
    assert abs(sch["current"] - tw["current"]) < abs(
        sch["current"] - conv["current"]
    )
    # Gain: same ordering.
    assert abs(sch["gain_db"] - tw["gain_db"]) < abs(
        sch["gain_db"] - conv["gain_db"]
    )
    # UGF: same ordering.
    assert abs(sch["ugf"] - tw["ugf"]) < abs(sch["ugf"] - conv["ugf"])


def test_reconciliation_ran(this_work):
    assert this_work.reconciled
    for net, rec in this_work.reconciled.items():
        assert rec.wires >= 1


def test_runtime_accounting(this_work, conventional):
    assert this_work.wall_time > 0
    assert this_work.modeled_runtime > conventional.modeled_runtime


def test_manual_flavor_at_least_as_good(flow, circuit, this_work):
    manual = flow.run(circuit, flavor="manual")
    sch = circuit.measure(circuit.schematic())
    # The oracle deviates no more than 2x this work on the gain metric
    # (it searches a superset of the space; allow slack for placement
    # randomness).
    dev_manual = abs(sch["gain_db"] - manual.metrics["gain_db"])
    dev_tw = abs(sch["gain_db"] - this_work.metrics["gain_db"])
    assert dev_manual <= 2.0 * dev_tw + 1.0


def test_detailed_routes_realized(this_work):
    assert this_work.detailed_routes
    for net, route in this_work.detailed_routes.items():
        expected = this_work.route_budgets[net].n_wires
        assert route.n_parallel >= 1
        # Matched nets may be promoted to the partner's count; all
        # others realize exactly the reconciled count.
        if route.matched_with is None:
            assert route.n_parallel == expected
        assert route.wires


def test_detailed_routes_matched_pairs_equal(tech):
    from repro.circuits import FiveTransistorOta
    from repro.flow import HierarchicalFlow

    ota = FiveTransistorOta(tech, i_tail=100e-6, c_load=50e-15,
                            pair_fins=48, mirror_fins=48, tail_fins=96)
    flow = HierarchicalFlow(tech, n_bins=1, max_wires=3, placer_iterations=150)
    result = flow.run(ota, flavor="this_work", measure=False)
    matched = [r for r in result.detailed_routes.values() if r.matched_with]
    for route in matched:
        partner = result.detailed_routes[route.matched_with]
        assert route.n_parallel == partner.n_parallel


def test_placer_only_receives_usable_options(this_work):
    """Every option offered to the placer passes the quality gate."""
    for report in this_work.reports.values():
        options = report.placer_options()
        best = min(o.cost for o in options)
        for option in options:
            assert option.cost <= 1.5 * best + 5.0
