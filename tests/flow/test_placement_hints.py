"""Floorplan hints and row placement in the flow."""

import pytest

from repro.circuits import CommonSourceAmpCircuit, RingOscillatorVco
from repro.flow import HierarchicalFlow


def test_default_circuits_have_no_hint(tech):
    cs = CommonSourceAmpCircuit(tech, stage_fins=48, load_fins=72)
    assert cs.placement_rows() is None


def test_vco_hint_is_a_snake(tech):
    vco = RingOscillatorVco(tech, stages=4)
    rows = vco.placement_rows()
    assert len(rows) == 2
    names = [n for row in rows for n in row]
    binding_names = {b.name for b in vco.bindings()}
    assert set(names) == binding_names
    assert len(names) == len(set(names))
    # Top row holds the first half in order, bottom the second reversed.
    assert rows[0][0] == "xstage0"
    assert rows[1][0] == "xstage3"


def test_row_placement_no_overlaps(tech):
    vco = RingOscillatorVco(tech, stages=4)
    flow = HierarchicalFlow(tech, n_bins=1, max_wires=2)
    result = flow.run(vco, flavor="conventional", measure=False)
    placement = result.placement
    assert placement is not None
    # Two distinct y levels (two rows).
    ys = {pos[1] for pos in placement.positions.values()}
    assert len(ys) == 2
    # Within each row, x positions strictly increase without overlap.
    for y_level in ys:
        row = sorted(
            (pos[0], name)
            for name, pos in placement.positions.items()
            if pos[1] == y_level
        )
        xs = [x for x, _ in row]
        assert xs == sorted(set(xs))


def test_adjacent_stage_routes_short(tech):
    """The snake keeps consecutive-stage nets far shorter than the span."""
    vco = RingOscillatorVco(tech, stages=4)
    flow = HierarchicalFlow(tech, n_bins=1, max_wires=2)
    result = flow.run(vco, flavor="conventional", measure=False)
    span = result.placement.width + result.placement.height
    stage_nets = [b for n, b in result.route_budgets.items() if n.startswith("na")]
    assert stage_nets
    for budget in stage_nets:
        assert budget.route.length_nm < 0.8 * span
