"""Flow-result JSON serialization."""

import json

import pytest

from repro.circuits import CommonSourceAmpCircuit
from repro.flow import HierarchicalFlow
from repro.flow.report import flow_result_to_dict, write_flow_report


@pytest.fixture(scope="module")
def result(tech):
    circuit = CommonSourceAmpCircuit(tech, i_bias=50e-6, stage_fins=48,
                                     load_fins=72)
    flow = HierarchicalFlow(tech, n_bins=2, max_wires=3, placer_iterations=150)
    return flow.run(circuit, flavor="this_work")


def test_dict_structure(result):
    doc = flow_result_to_dict(result)
    assert doc["circuit"] == "cs_amplifier"
    assert doc["flavor"] == "this_work"
    assert "gain_db" in doc["metrics"]
    assert set(doc["choices"]) == {"xstage", "xload"}
    for choice in doc["choices"].values():
        assert choice["nfin"] * choice["nf"] * choice["m"] > 0
    assert doc["primitives"]


def test_reconciled_constraints_serialized(result):
    doc = flow_result_to_dict(result)
    for net, rec in doc["reconciled"].items():
        assert rec["wires"] >= 1
        for c in rec["constraints"]:
            assert c["w_min"] >= 1


def test_json_roundtrip(result, tmp_path):
    path = tmp_path / "flow.json"
    write_flow_report(result, str(path))
    loaded = json.loads(path.read_text())
    assert loaded == flow_result_to_dict(result)


def test_placement_serialized(result):
    doc = flow_result_to_dict(result)
    assert doc["placement"]["width_nm"] > 0
    assert len(doc["placement"]["positions"]) == 2
