"""Layout container: wires, ports, instances."""

import pytest

from repro.errors import LayoutError
from repro.geometry import (
    DevicePlacement,
    Instance,
    Layout,
    Point,
    Port,
    Rect,
    Via,
    Wire,
    flatten_instances,
)


def make_layout():
    lay = Layout(name="cell")
    lay.devices.append(
        DevicePlacement("MA", 0, Rect(0, 0, 1800, 384), nfin=8, nf=20)
    )
    lay.wires.append(Wire("out", "M2", Rect(0, 400, 1800, 432), role="strap"))
    lay.wires.append(
        Wire("out", "M1", Rect(0, 0, 32, 432), role="finger_stub", owner="MA.d")
    )
    lay.vias.append(Via("out", "M1", "M2", Point(0, 400)))
    lay.ports.append(Port("out", "M2", Rect(0, 400, 32, 432)))
    return lay


def test_wire_length_and_width():
    w = Wire("n", "M2", Rect(0, 0, 1000, 32))
    assert w.length == 1000
    assert w.width == 32
    v = Wire("n", "M1", Rect(0, 0, 32, 500))
    assert v.length == 500


def test_via_cuts_validation():
    with pytest.raises(LayoutError):
        Via("n", "M1", "M2", Point(0, 0), cuts=0)


def test_layout_bbox_and_aspect():
    lay = make_layout()
    box = lay.bbox()
    assert box.width == 1800
    assert lay.area == box.area
    assert lay.aspect_ratio == pytest.approx(1800 / 432)


def test_empty_layout_bbox_raises():
    with pytest.raises(LayoutError):
        Layout(name="empty").bbox()


def test_wires_and_vias_on_net():
    lay = make_layout()
    assert len(lay.wires_on_net("out")) == 2
    assert len(lay.vias_on_net("out")) == 1
    assert lay.wires_on_net("zz") == []


def test_port_lookup():
    lay = make_layout()
    assert lay.port("out").layer == "M2"
    with pytest.raises(LayoutError):
        lay.port("zz")


def test_port_nets_ordered_unique():
    lay = make_layout()
    lay.ports.append(Port("out", "M3", Rect(0, 0, 10, 10)))
    assert lay.port_nets() == ["out"]


def test_nets_listing():
    lay = make_layout()
    assert lay.nets() == ["out"]


def test_nets_include_via_only_nets():
    lay = make_layout()
    lay.vias.append(Via("orphan", "M2", "M3", Point(500, 500)))
    assert lay.nets() == ["orphan", "out"]


def test_bbox_includes_via_positions():
    lay = make_layout()
    base = lay.bbox()
    lay.vias.append(Via("out", "M1", "M2", Point(base.x1 + 400, 0)))
    grown = lay.bbox()
    assert grown.x1 == base.x1 + 400
    assert grown.y0 == base.y0


def test_instance_placed_bbox():
    lay = make_layout()
    inst = Instance("x1", lay, Point(1000, 2000))
    box = inst.placed_bbox()
    assert box.x0 == 1000
    assert box.y0 == 2000
    assert box.width == lay.width


def test_instance_port_center():
    lay = make_layout()
    inst = Instance("x1", lay, Point(100, 200))
    center = inst.port_center("out")
    local = lay.port("out").rect.center
    box = lay.bbox()
    assert center.x == 100 + (local.x - box.x0)
    assert center.y == 200 + (local.y - box.y0)


def test_instance_port_center_flipped():
    lay = make_layout()
    plain = Instance("a", lay, Point(0, 0)).port_center("out")
    flipped = Instance("b", lay, Point(0, 0), flipped_x=True).port_center("out")
    assert flipped.x == lay.width - plain.x
    assert flipped.y == plain.y


def test_wire_roles_and_owner_defaults():
    w = Wire("n", "M2", Rect(0, 0, 100, 32))
    assert w.role == "route"
    assert w.owner == ""


def test_layout_metadata_free_form():
    lay = Layout(name="m")
    lay.metadata["pattern"] = "ABBA"
    assert lay.metadata["pattern"] == "ABBA"


def test_flatten_translates_and_prefixes():
    lay = make_layout()
    flat = flatten_instances(
        "top",
        [
            Instance("x1", lay, Point(0, 0)),
            Instance("x2", lay, Point(5000, 0)),
        ],
    )
    assert len(flat.devices) == 2 * len(lay.devices)
    assert len(flat.wires) == 2 * len(lay.wires)
    assert len(flat.vias) == 2 * len(lay.vias)
    # Unmapped nets get instance prefixes so children cannot alias.
    assert sorted(flat.nets()) == ["x1/out", "x2/out"]
    assert flat.devices[0].device == "x1/MA"
    second = flat.devices[len(lay.devices)]
    assert second.rect.x0 == lay.devices[0].rect.x0 + 5000


def test_flatten_net_map_merges_onto_parent_net():
    lay = make_layout()
    flat = flatten_instances(
        "top",
        [
            Instance("x1", lay, Point(0, 0)),
            Instance("x2", lay, Point(5000, 0)),
        ],
        net_map={"x1": {"out": "bus"}, "x2": {"out": "bus"}},
    )
    assert flat.nets() == ["bus"]


def test_flatten_mirrors_flipped_instances():
    lay = make_layout()
    plain = flatten_instances("p", [Instance("a", lay, Point(0, 0))])
    mirrored = flatten_instances(
        "m", [Instance("a", lay, Point(0, 0), flipped_x=True)]
    )
    width = lay.bbox().width
    rect = plain.devices[0].rect
    mrect = mirrored.devices[0].rect
    assert mrect.x0 == width - rect.x1
    assert mrect.x1 == width - rect.x0
    assert mrect.y0 == rect.y0
