"""Rectilinear geometry, with property-based invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LayoutError
from repro.geometry import Point, Rect, bounding_box

coords = st.integers(min_value=-100_000, max_value=100_000)
sizes = st.integers(min_value=0, max_value=50_000)


def rects():
    return st.builds(
        lambda x, y, w, h: Rect(x, y, x + w, y + h), coords, coords, sizes, sizes
    )


def test_point_translation():
    assert Point(1, 2).translated(3, -4) == Point(4, -2)


def test_rect_basic_properties():
    r = Rect(0, 0, 100, 50)
    assert r.width == 100
    assert r.height == 50
    assert r.area == 5000
    assert r.center == Point(50, 25)
    assert r.aspect_ratio == pytest.approx(2.0)


def test_rect_from_size():
    assert Rect.from_size(10, 20, 30, 40) == Rect(10, 20, 40, 60)


def test_inverted_rect_rejected():
    with pytest.raises(LayoutError):
        Rect(10, 0, 0, 10)


def test_degenerate_rect_allowed():
    r = Rect(0, 0, 100, 0)
    assert r.height == 0
    assert r.aspect_ratio == float("inf")


def test_intersects_vs_overlaps():
    a = Rect(0, 0, 10, 10)
    b = Rect(10, 0, 20, 10)  # touching edge
    c = Rect(5, 5, 15, 15)
    assert a.intersects(b)
    assert not a.overlaps(b)
    assert a.overlaps(c)


def test_contains_point_boundary():
    r = Rect(0, 0, 10, 10)
    assert r.contains_point(Point(0, 0))
    assert r.contains_point(Point(10, 10))
    assert not r.contains_point(Point(11, 5))


def test_union():
    a = Rect(0, 0, 10, 10)
    b = Rect(20, -5, 30, 5)
    assert a.union(b) == Rect(0, -5, 30, 10)


def test_expanded():
    assert Rect(0, 0, 10, 10).expanded(5) == Rect(-5, -5, 15, 15)


def test_bounding_box_empty_raises():
    with pytest.raises(LayoutError):
        bounding_box([])


@given(rects(), coords, coords)
def test_translation_preserves_size(r, dx, dy):
    t = r.translated(dx, dy)
    assert t.width == r.width
    assert t.height == r.height


@given(rects(), rects())
def test_union_contains_both(a, b):
    u = a.union(b)
    for r in (a, b):
        assert u.x0 <= r.x0 and u.y0 <= r.y0
        assert u.x1 >= r.x1 and u.y1 >= r.y1


@given(rects(), rects())
def test_union_commutative(a, b):
    assert a.union(b) == b.union(a)


@given(rects(), rects())
def test_overlap_implies_intersect(a, b):
    if a.overlaps(b):
        assert a.intersects(b)


@given(rects(), rects())
def test_intersects_symmetric(a, b):
    assert a.intersects(b) == b.intersects(a)


@given(st.lists(rects(), min_size=1, max_size=10))
def test_bounding_box_covers_all(rs):
    box = bounding_box(rs)
    for r in rs:
        assert box.union(r) == box
