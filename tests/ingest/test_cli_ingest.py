"""The ``repro ingest`` and ``repro flow --netlist`` CLI surfaces."""

import json

import pytest

from repro.cli import build_parser, main

OTA = "examples/netlists/ota.sp"
DIFF_AMP = "examples/netlists/diff_amp.sp"


def test_ingest_text_output(capsys):
    assert main(["ingest", OTA]) == 0
    out = capsys.readouterr().out
    assert "u1_differential_pair" in out
    assert "differential_pair(base_fins=32)" in out
    assert "coverage 100.0%" in out


def test_ingest_json_output(capsys):
    assert main(["ingest", DIFF_AMP, "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["circuit"] == "diff_amp"
    assert data["coverage"] == 1.0
    assert data["uncovered"] == []
    mirror = data["primitives"][0]
    assert mirror["binding"]["ratio"] == 4


def test_ingest_json_is_byte_deterministic(capsys):
    assert main(["ingest", OTA, "--format", "json"]) == 0
    first = capsys.readouterr().out
    assert main(["ingest", OTA, "--format", "json", "--jobs", "4"]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_ingest_exit_code_on_errors(tmp_path, capsys):
    bad = tmp_path / "asym.sp"
    bad.write_text(
        "* asym\n"
        "MA outp inp tail 0 nfet nfin=8 nf=2\n"
        "MB outn inn tail 0 nfet nfin=10 nf=2\n"
        "MT tail vb 0 0 nfet nfin=8 nf=2\n"
        "Rp vdd! outp 10k\n"
        "Rn vdd! outn 10k\n"
        ".end\n"
    )
    assert main(["ingest", str(bad), "--no-validate"]) == 1
    out = capsys.readouterr().out
    assert "TOPO-ASYM-SIZE" in out


def test_ingest_severity_threshold(tmp_path, capsys):
    lonely = tmp_path / "lonely.sp"
    lonely.write_text(
        "* lonely\n"
        "M1 out vb ns 0 nfet nfin=8 nf=2\n"
        "Rs ns 0 1k\n"
        "Rl vdd! out 10k\n"
        "Vbias vb 0 0.4\n"
        "Vsup vdd! 0 0.8\n"
        ".end\n"
    )
    args = ["ingest", str(lonely), "--no-validate"]
    assert main(args) == 0  # TOPO-UNCOVERED is only a warning
    capsys.readouterr()
    assert main(args + ["--severity", "warning"]) == 1
    assert "TOPO-UNCOVERED" in capsys.readouterr().out


def test_flow_netlist_conventional(capsys):
    assert main(["flow", "--netlist", DIFF_AMP,
                 "--flavor", "conventional"]) == 0
    out = capsys.readouterr().out
    assert DIFF_AMP in out


def test_flow_rejects_circuit_and_netlist_together():
    with pytest.raises(SystemExit):
        main(["flow", "ota", "--netlist", OTA])


def test_flow_rejects_neither():
    with pytest.raises(SystemExit):
        main(["flow"])


def test_ingest_parser_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["ingest", "x.sp", "--format", "json", "--no-validate",
         "--severity", "warning", "--max-per-rule", "9", "--jobs", "2"]
    )
    assert args.netlist == "x.sp"
    assert args.validate is False
    assert args.jobs == 2
