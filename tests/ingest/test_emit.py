"""Constraint emission: specs, bindings, size lint."""

from repro.ingest import build_device_graph, parse_spice, recognize
from repro.ingest.emit import emit_constraints
from repro.verify.diagnostics import Report


def _emit_all(tech, text):
    graph = build_device_graph(parse_spice(text, tech=tech))
    recognition = recognize(graph)
    report = Report(target="test")
    prims = [
        emit_constraints(match, i, graph, report)
        for i, match in enumerate(recognition.matches)
    ]
    return prims, report


def _rules(report):
    return [v.rule for v in report.violations]


DP = (
    "* t\n"
    "MA outp inp tail 0 nfet nfin=8 nf=2 m=2\n"
    "MB outn inn tail 0 nfet nfin=8 nf=2 m=2\n"
    "MT tail vb 0 0 nfet nfin=8 nf=2 m=4\n"
    ".end\n"
)


def test_dp_spec_and_binding(tech):
    prims, report = _emit_all(tech, DP)
    assert _rules(report) == []
    dp = prims[0]
    assert dp.name == "u0_differential_pair"
    assert dp.spec is not None
    assert set(dp.spec.matched_group) == {"A", "B"}
    assert ("outp", "outn") in dp.spec.symmetric_pairs
    assert ("inp", "inn") in dp.spec.symmetric_pairs
    assert dp.binding is not None
    assert dp.binding.family == "differential_pair"
    assert dp.binding.base_fins == 8 * 2 * 2
    assert dp.binding.ratio == 1
    assert dict(dp.binding.port_map)["tail"] == "tail"
    tail = prims[1]
    assert tail.binding.family == "current_source"
    assert tail.binding.base_fins == 8 * 2 * 4


def test_mixed_unit_sizing_flags_asym(tech):
    text = DP.replace("MB outn inn tail 0 nfet nfin=8",
                      "MB outn inn tail 0 nfet nfin=10")
    prims, report = _emit_all(tech, text)
    assert "TOPO-ASYM-SIZE" in _rules(report)
    dp = next(p for p in prims if p.match.kind == "differential_pair")
    assert dp.binding is None


def test_mixed_multiplier_on_unratioed_flags_asym(tech):
    text = DP.replace("MB outn inn tail 0 nfet nfin=8 nf=2 m=2",
                      "MB outn inn tail 0 nfet nfin=8 nf=2 m=3")
    prims, report = _emit_all(tech, text)
    assert "TOPO-ASYM-SIZE" in _rules(report)


def test_integer_mirror_ratio(tech):
    text = (
        "* t\n"
        "M1 nb nb 0 0 nfet nfin=8 nf=2 m=1\n"
        "M2 out nb 0 0 nfet nfin=8 nf=2 m=4\n"
        "Rb vdd! nb 100k\n"
        ".end\n"
    )
    prims, report = _emit_all(tech, text)
    assert _rules(report) == []
    (mirror,) = prims
    assert mirror.binding.family == "current_mirror"
    assert mirror.binding.ratio == 4
    assert mirror.binding.base_fins == 8 * 2 * 1


def test_non_integer_mirror_ratio_rejected(tech):
    text = (
        "* t\n"
        "M1 nb nb 0 0 nfet nfin=8 nf=2 m=2\n"
        "M2 out nb 0 0 nfet nfin=8 nf=2 m=3\n"
        "Rb vdd! nb 100k\n"
        ".end\n"
    )
    prims, report = _emit_all(tech, text)
    assert "TOPO-ASYM-SIZE" in _rules(report)
    (mirror,) = prims
    assert mirror.binding is None
    assert mirror.spec is not None  # constraints still emitted


def test_multi_output_mirror_has_no_binding(tech):
    text = (
        "* t\n"
        "M1 nb nb 0 0 nfet nfin=8 nf=2\n"
        "M2 o1 nb 0 0 nfet nfin=8 nf=2\n"
        "M3 o2 nb 0 0 nfet nfin=8 nf=2\n"
        "Rb vdd! nb 100k\n"
        ".end\n"
    )
    prims, report = _emit_all(tech, text)
    assert "TOPO-NO-GENERATOR" in _rules(report)
    (mirror,) = prims
    assert mirror.binding is None
    # in/out symmetry constraints cover every output branch
    pairs = set(mirror.spec.symmetric_pairs)
    assert ("nb", "o1") in pairs and ("nb", "o2") in pairs


def test_floating_tail_pmos_xcp_has_no_generator(tech):
    text = (
        "* t\n"
        "MA op on x vdd! pfet nfin=8 nf=2\n"
        "MB on op x vdd! pfet nfin=8 nf=2\n"
        "MT x vb vdd! vdd! pfet nfin=8 nf=2\n"
        "Rp op 0 10k\n"
        "Rn on 0 10k\n"
        ".end\n"
    )
    prims, report = _emit_all(tech, text)
    xcp = next(p for p in prims if p.match.kind == "cross_coupled_pair")
    assert xcp.binding is None
    assert "TOPO-NO-GENERATOR" in _rules(report)
    assert xcp.spec is not None


def test_supply_tail_pmos_xcp_binds(tech):
    text = (
        "* t\n"
        "MA op on vdd! vdd! pfet nfin=8 nf=2\n"
        "MB on op vdd! vdd! pfet nfin=8 nf=2\n"
        "Rp op 0 10k\n"
        "Rn on 0 10k\n"
        ".end\n"
    )
    prims, report = _emit_all(tech, text)
    (xcp,) = prims
    assert xcp.binding.family == "pmos_cross_coupled_pair"
    assert dict(xcp.binding.port_map)["vdd!"] == "vdd!"


def test_inverter_emits_no_spec(tech):
    text = (
        "* t\n"
        "Mp out in vdd! vdd! pfet nfin=4 nf=1\n"
        "Mn out in 0 0 nfet nfin=4 nf=1\n"
        ".end\n"
    )
    prims, report = _emit_all(tech, text)
    (inv,) = prims
    assert inv.spec is None
    assert inv.binding is None
    assert "TOPO-NO-GENERATOR" in _rules(report)


def test_port_nets_exclude_internal(tech):
    # The DP tail is shared with the tail source, hence external to the
    # pair; drains/gates are external too. No member-only net leaks in.
    prims, _ = _emit_all(tech, DP)
    dp = prims[0]
    assert set(dp.spec.port_nets) == {"outp", "outn", "inp", "inn", "tail"}
