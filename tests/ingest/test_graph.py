"""Device-graph canonicalization: determinism and net folding."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.ingest import build_device_graph, parse_spice
from repro.ingest.graph import canonical_net, is_supply
from repro.spice.netlist import Circuit


def _dp_circuit(tech, order):
    """A 5T OTA core with elements added in the given order."""
    circuit = Circuit("dp")
    circuit.ports = ["vinp", "vinn", "vout", "vbn", "vdd!"]
    adders = {
        "MA": lambda: circuit.add_mosfet(
            "A", "nx", "vinp", "ntail", "0", tech.card("n"),
            MosGeometry(8, 2, 2)),
        "MB": lambda: circuit.add_mosfet(
            "B", "vout", "vinn", "ntail", "0", tech.card("n"),
            MosGeometry(8, 2, 2)),
        "M3": lambda: circuit.add_mosfet(
            "3", "nx", "nx", "vdd!", "vdd!", tech.card("p"),
            MosGeometry(8, 2, 2)),
        "M4": lambda: circuit.add_mosfet(
            "4", "vout", "nx", "vdd!", "vdd!", tech.card("p"),
            MosGeometry(8, 2, 2)),
        "M5": lambda: circuit.add_mosfet(
            "5", "ntail", "vbn", "0", "0", tech.card("n"),
            MosGeometry(8, 2, 4)),
    }
    for key in order:
        adders[key]()
    return circuit


def test_canonical_order_is_input_order_independent(tech):
    g1 = build_device_graph(_dp_circuit(tech, ["MA", "MB", "M3", "M4", "M5"]))
    g2 = build_device_graph(_dp_circuit(tech, ["M5", "M4", "M3", "MB", "MA"]))
    assert [d.name for d in g1.devices] == [d.name for d in g2.devices]
    assert g1.nets == g2.nets
    for d in g1.devices:
        assert g1.rank(d.name) == g2.rank(d.name)


def test_ground_spellings_fold(tech):
    assert canonical_net("0") == "0"
    assert canonical_net("gnd") == "0"
    assert canonical_net("vss!") == "0"
    assert canonical_net("net1") == "net1"
    text = "* t\nR1 a gnd 1k\nR2 a 0 1k\n.end\n"
    graph = build_device_graph(parse_spice(text, tech=tech))
    assert "0" in graph.nets
    assert "gnd" not in graph.nets
    assert len(graph.on_net("0")) == 2


def test_is_supply():
    assert is_supply("vdd!")
    assert not is_supply("vss!")  # ground spelling wins
    assert not is_supply("vdd")
    assert not is_supply("0")


def test_mos_kinds_and_terminals(tech):
    graph = build_device_graph(
        _dp_circuit(tech, ["MA", "MB", "M3", "M4", "M5"])
    )
    kinds = {d.name: d.kind for d in graph.mos_devices()}
    assert kinds == {
        "A": "nmos", "B": "nmos", "3": "pmos", "4": "pmos", "5": "nmos",
    }
    node = graph.device("A")
    assert node.net("g") == "vinp"
    assert node.net("s") == "ntail"
    with pytest.raises(KeyError):
        node.net("x")


def test_is_internal(tech):
    graph = build_device_graph(
        _dp_circuit(tech, ["MA", "MB", "M3", "M4", "M5"])
    )
    # ntail touches MA, MB and M5: internal to all three, not to the pair.
    assert graph.is_internal("ntail", frozenset({"A", "B", "5"}))
    assert not graph.is_internal("ntail", frozenset({"A", "B"}))
    assert not graph.is_internal("nosuch", frozenset({"A"}))


def test_sizing_distinguishes_devices(tech):
    graph = build_device_graph(
        _dp_circuit(tech, ["MA", "MB", "M3", "M4", "M5"])
    )
    tail = graph.device("5")
    assert tail.sizing == (8, 2, 4)
    assert graph.device("A").sizing == (8, 2, 2)
