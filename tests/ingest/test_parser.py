"""The SPICE parser: values, structure, hierarchy, error locations."""

import pytest

from repro.devices.lde import LdeContext
from repro.devices.mosfet import MosGeometry
from repro.errors import NetlistError
from repro.ingest import parse_spice, parse_spice_value
from repro.io import write_spice
from repro.spice.elements import (
    Capacitor,
    Mosfet,
    Resistor,
    Vccs,
    VoltageSource,
)
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Dc, Pulse, Pwl, Sin


# -- numeric values ---------------------------------------------------------


@pytest.mark.parametrize(
    ("token", "expected"),
    [
        ("1e-15", 1e-15),
        ("200f", 200e-15),
        ("10k", 10e3),
        ("1.2meg", 1.2e6),
        ("100meg", 1e8),
        ("2.5pF", 2.5e-12),
        ("-3.3", -3.3),
        ("4u", 4e-6),
        ("7N", 7e-9),
        ("0.5", 0.5),
        (".25", 0.25),
        ("2T", 2e12),
        ("3g", 3e9),
        ("5m", 5e-3),
    ],
)
def test_value_suffixes(token, expected):
    assert parse_spice_value(token) == pytest.approx(expected, rel=1e-12)


@pytest.mark.parametrize("token", ["", "abc", "1..2", "--3", "1e", "k10"])
def test_invalid_values_raise(token):
    with pytest.raises(NetlistError):
        parse_spice_value(token)


def test_unknown_suffix_raises():
    with pytest.raises(NetlistError, match="suffix"):
        parse_spice_value("10q")


# -- flat netlists ----------------------------------------------------------

FLAT = """* my title
* ports: a b vdd!
Rload vdd! a 10k
Cc a b 5f
Vin b 0 0.5 AC 1 45
.end
"""


def test_flat_netlist(tech):
    circuit = parse_spice(FLAT, tech=tech)
    assert circuit.name == "my title"
    assert circuit.ports == ["a", "b", "vdd!"]
    by_name = {e.name: e for e in circuit.elements}
    assert isinstance(by_name["load"], Resistor)
    assert by_name["load"].value == pytest.approx(10e3)
    assert isinstance(by_name["c"], Capacitor)
    assert by_name["c"].value == pytest.approx(5e-15)
    vin = by_name["in"]
    assert isinstance(vin, VoltageSource)
    assert vin.waveform == Dc(0.5)
    assert vin.ac_magnitude == 1.0
    assert vin.ac_phase_deg == 45.0


def test_continuation_lines(tech):
    text = "* t\nR1 a 0\n+ 10k\n.end\n"
    circuit = parse_spice(text, tech=tech)
    (res,) = circuit.elements
    assert res.value == pytest.approx(10e3)


def test_dc_keyword_and_waveforms(tech):
    text = (
        "* t\n"
        "V1 a 0 DC 1.2\n"
        "V2 b 0 PULSE(0 1 1n 10p 10p 5n 10n)\n"
        "V3 c 0 SIN(0.6 0.1 1meg)\n"
        "I4 d 0 PWL(0 0 1n 1 2n 0.5)\n"
        ".end\n"
    )
    circuit = parse_spice(text, tech=tech)
    by_name = {e.name: e for e in circuit.elements}
    assert by_name["1"].waveform == Dc(1.2)
    pulse = by_name["2"].waveform
    assert isinstance(pulse, Pulse)
    assert pulse.v2 == 1.0
    assert pulse.width == pytest.approx(5e-9)
    sin = by_name["3"].waveform
    assert isinstance(sin, Sin)
    assert sin.frequency == pytest.approx(1e6)
    pwl = circuit.elements[3].waveform
    assert isinstance(pwl, Pwl)
    assert pwl.points == ((0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5))


def test_mosfet_card(tech):
    text = "* t\nM1 d g s 0 nfet nfin=8 nf=2 m=3\n.end\n"
    circuit = parse_spice(text, tech=tech)
    (mos,) = circuit.elements
    assert isinstance(mos, Mosfet)
    assert mos.card.polarity > 0
    assert mos.geometry == MosGeometry(nfin=8, nf=2, m=3)


def test_mosfet_lde_annotation_roundtrip(tech):
    circuit = Circuit("lde")
    circuit.add_mosfet(
        "1", "d", "g", "s", "0", tech.card("n"), MosGeometry(8, 2, 1),
        lde=LdeContext(vth_shift=1.25e-3, mobility_factor=0.975),
    )
    parsed = parse_spice(write_spice(circuit), tech=tech)
    (mos,) = parsed.elements
    assert mos.lde.vth_shift == 1.25e-3
    assert mos.lde.mobility_factor == 0.975


def test_vccs_unswap_roundtrip(tech):
    circuit = Circuit("gm")
    circuit.add_vccs("1", "na", "nb", "cp", "cm", 2.5e-3)
    circuit.add_resistor("l", "na", "0", 1e3)
    parsed = parse_spice(write_spice(circuit), tech=tech)
    gm = next(e for e in parsed.elements if isinstance(e, Vccs))
    assert (gm.a, gm.b) == ("na", "nb")
    assert gm.gain == 2.5e-3


# -- hierarchy --------------------------------------------------------------

HIER = """* hier
.subckt inv in out vdd!
Mp out in vdd! vdd! pfet nfin=4
Mn out in 0 0 nfet nfin=4
.ends
.subckt top a y vdd!
Xu1 a mid vdd! inv
Xu2 mid y vdd! inv
Cload y 0 1f
.ends
.end
"""


def test_subckt_flattening(tech):
    circuit = parse_spice(HIER, tech=tech)
    assert circuit.name == "top"
    assert circuit.ports == ["a", "y", "vdd!"]
    names = sorted(e.name for e in circuit.elements)
    assert names == ["load", "u1.n", "u1.p", "u2.n", "u2.p"]
    u1p = next(e for e in circuit.elements if e.name == "u1.p")
    assert (u1p.d, u1p.g, u1p.s) == ("mid", "a", "vdd!")


def test_last_subckt_is_top_and_internal_nets_prefixed(tech):
    text = (
        "* t\n"
        ".subckt cell in out\n"
        "Ra in x 1k\n"
        "Rb x out 1k\n"
        ".ends\n"
        ".subckt wrap a b\n"
        "Xc a b cell\n"
        ".ends\n"
        ".end\n"
    )
    circuit = parse_spice(text, tech=tech)
    assert circuit.name == "wrap"
    nets = {n for e in circuit.elements for n in (e.a, e.b)}
    assert "c.x" in nets


@pytest.mark.parametrize(
    ("text", "match"),
    [
        ("* t\nX1 a b nosuch\n.end\n", "unknown subcircuit"),
        (
            "* t\n.subckt c a\nRr a 0 1k\n.ends\nX1 a b c\n.end\n",
            "1 ports",
        ),
        (
            "* t\n.subckt c a\nXs a c\n.ends\nX1 a c\n.end\n",
            "recursive",
        ),
        ("* t\n.subckt c a\n.subckt d b\n.ends\n.end\n", "nested"),
        ("* t\n.ends\n.end\n", ".ends without"),
        ("* t\n.subckt c a\nRr a 0 1k\n.end\n", "never closed"),
        (
            "* t\n.subckt c a\nRr a 0 1k\n.ends\n"
            ".subckt c a\nRr a 0 1k\n.ends\n.end\n",
            "duplicate",
        ),
        ("* t\n.tran 1n 1u\n.end\n", "unsupported control"),
        ("* empty\n.end\n", "no elements"),
    ],
)
def test_structural_errors(tech, text, match):
    with pytest.raises(NetlistError, match=match):
        parse_spice(text, tech=tech)


# -- error locations --------------------------------------------------------


def test_errors_carry_source_and_line(tech):
    text = "* t\nR1 a 0 1k\nQ2 a b c bjt\n.end\n"
    with pytest.raises(NetlistError, match=r"demo\.sp:3: "):
        parse_spice(text, source="demo.sp", tech=tech)


def test_continuation_without_card_located(tech):
    with pytest.raises(NetlistError, match=":2:"):
        parse_spice("* t\n+ 10k\n.end\n", tech=tech)


@pytest.mark.parametrize(
    ("card", "match"),
    [
        ("M1 d g s 0 nfet nf=2", "nfin"),
        ("M1 d g s 0 bjt nfin=8", "unknown MOS model"),
        ("M1 d g s 0 nfet nfin=8 w=1u", "unknown parameter"),
        ("M1 d g s 0 nfet nfin=8 junk", "key=value"),
        ("M1 d g s nfet", "expected"),
        ("R1 a 0", "fields"),
        ("E1 a b c 2.0", "gain"),
        ("V1 a 0 SIN(0.6)", "SIN takes"),
        ("V1 a 0 PWL(0 1 2)", "even number"),
        ("V1 a 0 PULSE(1)", "PULSE takes"),
        ("V1 a 0 what ever", "cannot parse source"),
    ],
)
def test_element_errors(tech, card, match):
    with pytest.raises(NetlistError, match=match):
        parse_spice(f"* t\n{card}\n.end\n", tech=tech)
