"""End-to-end ingestion over the example corpus and in-tree circuits."""

import json
from pathlib import Path

import pytest

from repro.circuits import FiveTransistorOta
from repro.ingest import IngestedCircuit, ingest_netlist
from repro.ingest.pipeline import ingest_file
from repro.io import write_spice

CORPUS = Path(__file__).resolve().parents[2] / "examples" / "netlists"


def _unwaived_errors(result):
    return [
        v for v in result.report.violations
        if v.severity == "error" and not v.waived
    ]


@pytest.fixture(scope="module")
def corpus(tech):
    """Fully validated ingest results for all three corpus netlists."""
    return {
        p.stem: ingest_file(p, tech=tech, validate=True)
        for p in sorted(CORPUS.glob("*.sp"))
    }


def test_corpus_is_complete():
    assert sorted(p.stem for p in CORPUS.glob("*.sp")) == [
        "comparator", "diff_amp", "ota",
    ]


def test_corpus_full_coverage_and_clean(corpus):
    for name, result in corpus.items():
        assert result.coverage == 1.0, name
        assert result.recognition.uncovered == (), name
        assert _unwaived_errors(result) == [], name


def test_ota_recognition(corpus):
    result = corpus["ota"]
    assert result.circuit.name == "ota5"
    assert result.graph.ports == ("vinp", "vinn", "vout", "vbn", "vdd!")
    prims = {p.name: p for p in result.primitives}
    assert set(prims) == {
        "u0_current_mirror", "u1_differential_pair", "u2_current_source",
    }
    mirror = prims["u0_current_mirror"]
    assert mirror.binding.family == "pmos_current_mirror"
    assert mirror.binding.base_fins == 32
    dp = prims["u1_differential_pair"]
    assert set(dp.match.device_names) == {"dp.MA", "dp.MB"}
    assert ("vinp", "vinn") in dp.match.symmetric_nets
    tail = prims["u2_current_source"]
    assert tail.binding.base_fins == 64


def test_comparator_recognition(corpus):
    result = corpus["comparator"]
    prims = {p.name: p.binding.family for p in result.primitives}
    assert prims == {
        "u0_cross_coupled_pair": "cross_coupled_pair",
        "u1_cross_coupled_pair": "pmos_cross_coupled_pair",
        "u2_differential_pair": "differential_pair",
        "u3_current_source": "current_source",
        "u4_current_source": "pmos_current_source",
        "u5_current_source": "pmos_current_source",
    }
    nxcp = next(p for p in result.primitives
                if p.name == "u0_cross_coupled_pair")
    assert set(nxcp.match.device_names) == {"latch.XA", "latch.XB"}


def test_diff_amp_recognition(corpus):
    result = corpus["diff_amp"]
    assert result.circuit.name == "diff_amp"
    assert result.graph.ports == (
        "vinp", "vinn", "voutp", "voutn", "vdd!",
    )
    prims = {p.name: p for p in result.primitives}
    mirror = prims["u0_current_mirror"]
    assert mirror.binding.ratio == 4
    assert mirror.binding.base_fins == 16
    dp = prims["u1_differential_pair"]
    assert dp.binding.family == "differential_pair"
    assert ("voutp", "voutn") in dp.match.symmetric_nets


def test_json_is_deterministic(corpus, tech):
    for name, result in corpus.items():
        text = (CORPUS / f"{name}.sp").read_text()
        again = ingest_netlist(
            text, source=result.source, tech=tech, validate=True,
        )
        first = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        second = json.dumps(again.to_dict(), indent=2, sort_keys=True)
        assert first == second


def test_in_tree_ota_recognized_from_its_own_spice(tech):
    circuit = FiveTransistorOta(tech).schematic()
    result = ingest_netlist(
        write_spice(circuit), source="ota5t", tech=tech, validate=False,
    )
    kinds = sorted(p.match.kind for p in result.primitives)
    assert kinds == [
        "current_mirror", "current_source", "differential_pair",
    ]
    assert result.coverage == 1.0


def test_no_devices_flagged(tech):
    result = ingest_netlist(
        "* t\nR1 a 0 1k\n.end\n", tech=tech, validate=False,
    )
    assert "TOPO-NO-DEVICES" in [v.rule for v in result.report.violations]


def test_uncovered_and_ambiguous_flagged(tech):
    text = (
        "* t\n"
        "MA oa ia tail 0 nfet nfin=8 nf=2\n"
        "MB ob ib tail 0 nfet nfin=8 nf=2\n"
        "MC oc ic tail 0 nfet nfin=8 nf=2\n"
        "MT tail vb 0 0 nfet nfin=8 nf=2\n"
        ".end\n"
    )
    result = ingest_netlist(text, tech=tech, validate=False)
    rules = {v.rule for v in result.report.violations}
    assert "TOPO-UNCOVERED" in rules
    assert "TOPO-AMBIGUOUS" in rules


def test_ingested_circuit_builds_flow_bindings(corpus, tech):
    circuit = IngestedCircuit(corpus["diff_amp"], tech)
    bindings = circuit.bindings()
    assert [b.name for b in bindings] == [
        "u0_current_mirror", "u1_differential_pair",
    ]
    mirror = bindings[0]
    assert mirror.primitive.base_fins == 16
    assert mirror.primitive.name == "u0_current_mirror"
    assert mirror.port_map == {"in": "nbias", "out": "ntail"}
    assert circuit.skipped == []


def test_ingested_circuit_skips_unboundable(tech):
    # A multi-output mirror has constraints but no library family.
    text = (
        "* t\n"
        "M1 nb nb 0 0 nfet nfin=8 nf=2\n"
        "M2 o1 nb 0 0 nfet nfin=8 nf=2\n"
        "M3 o2 nb 0 0 nfet nfin=8 nf=2\n"
        "Rb vdd! nb 100k\n"
        ".end\n"
    )
    result = ingest_netlist(text, tech=tech, validate=False)
    circuit = IngestedCircuit(result, tech)
    assert circuit.bindings() == []
    assert circuit.skipped == ["u0_current_mirror"]


def test_ingested_circuit_testbench_and_measure(corpus, tech):
    from repro.errors import OptimizationError
    from repro.spice.netlist import Circuit

    circuit = IngestedCircuit(corpus["ota"], tech)
    tb = Circuit("tb")
    circuit.finish_testbench(tb)
    supplies = [e for e in tb.elements]
    assert len(supplies) == 1
    assert supplies[0].plus == "vdd!"
    with pytest.raises(OptimizationError, match="measure=False"):
        circuit.measure(Circuit("dut"))


def test_gen_fail_is_reported_not_raised(tech, monkeypatch):
    # When the cell generator cannot realize a spec, the pipeline
    # degrades to a TOPO-GEN-FAIL warning instead of raising.
    from repro.errors import LayoutError
    from repro.ingest import pipeline

    def boom(*args, **kwargs):
        raise LayoutError("no legal placement")

    monkeypatch.setattr(pipeline, "generate_layout", boom)
    text = (
        "* t\n"
        "MA outp inp tail 0 nfet nfin=8 nf=2\n"
        "MB outn inn tail 0 nfet nfin=8 nf=2\n"
        "MT tail vb 0 0 nfet nfin=8 nf=2\n"
        "Rp vdd! outp 10k\n"
        "Rn vdd! outn 10k\n"
        ".end\n"
    )
    result = ingest_netlist(text, tech=tech, validate=True)
    flags = [v for v in result.report.violations
             if v.rule == "TOPO-GEN-FAIL"]
    assert flags
    assert "no legal placement" in flags[0].message
