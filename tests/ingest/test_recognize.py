"""The subgraph recognizer: per-pattern matches, claiming, ambiguity."""

from repro.ingest import build_device_graph, parse_spice, recognize


def _recognize(tech, text):
    return recognize(build_device_graph(parse_spice(text, tech=tech)))


def _kinds(recognition):
    return [m.kind for m in recognition.matches]


def test_differential_pair(tech):
    text = (
        "* t\n"
        "MA outp inp tail 0 nfet nfin=8 nf=2\n"
        "MB outn inn tail 0 nfet nfin=8 nf=2\n"
        "MT tail vb 0 0 nfet nfin=8 nf=2\n"
        ".end\n"
    )
    rec = _recognize(tech, text)
    assert _kinds(rec) == ["differential_pair", "current_source"]
    dp = rec.matches[0]
    assert dp.polarity == "n"
    assert set(dp.device_names) == {"A", "B"}
    assert dict(dp.nets)["tail"] == "tail"
    assert rec.uncovered == ()
    assert rec.coverage == 1.0


def test_pmos_differential_pair(tech):
    text = (
        "* t\n"
        "MA outp inp tail vdd! pfet nfin=8 nf=2\n"
        "MB outn inn tail vdd! pfet nfin=8 nf=2\n"
        "MT tail vb vdd! vdd! pfet nfin=8 nf=2\n"
        "Rp outp 0 10k\n"
        "Rn outn 0 10k\n"
        ".end\n"
    )
    rec = _recognize(tech, text)
    assert _kinds(rec) == ["differential_pair", "current_source"]
    assert rec.matches[0].polarity == "p"


def test_simple_mirror_and_ratio_roles(tech):
    text = (
        "* t\n"
        "M1 nb nb 0 0 nfet nfin=8 nf=2 m=1\n"
        "M2 out nb 0 0 nfet nfin=8 nf=2 m=4\n"
        "Rb vdd! nb 100k\n"
        ".end\n"
    )
    rec = _recognize(tech, text)
    assert _kinds(rec) == ["current_mirror"]
    mirror = rec.matches[0]
    assert mirror.device_of("MREF") == "1"
    assert mirror.device_of("MOUT") == "2"
    assert mirror.ratioed


def test_multi_output_mirror_merges(tech):
    text = (
        "* t\n"
        "M1 nb nb 0 0 nfet nfin=8 nf=2\n"
        "M2 o1 nb 0 0 nfet nfin=8 nf=2\n"
        "M3 o2 nb 0 0 nfet nfin=8 nf=2\n"
        "Rb vdd! nb 100k\n"
        ".end\n"
    )
    rec = _recognize(tech, text)
    assert _kinds(rec) == ["current_mirror"]
    roles = [role for role, _ in rec.matches[0].devices]
    assert roles == ["MREF", "MOUT", "MOUT2"]
    assert rec.ambiguities == ()
    assert rec.coverage == 1.0


def test_cascode_mirror_shadows_simple_mirror(tech):
    text = (
        "* t\n"
        "M1 mr mr 0 0 nfet nfin=8 nf=2\n"
        "M2 in in mr 0 nfet nfin=8 nf=2\n"
        "M3 mo mr 0 0 nfet nfin=8 nf=2\n"
        "M4 out in mo 0 nfet nfin=8 nf=2\n"
        "Rb vdd! in 100k\n"
        "Rl vdd! out 10k\n"
        ".end\n"
    )
    rec = _recognize(tech, text)
    assert _kinds(rec) == ["cascode_current_mirror"]
    cm = rec.matches[0]
    assert cm.device_of("MREF") == "1"
    assert cm.device_of("MCOUT") == "4"
    # The inner simple mirror (M1, M3) must not be reported as ambiguous:
    # cross-kind overlap resolves silently by priority.
    assert rec.ambiguities == ()


def test_cross_coupled_pair_beats_diff_pair(tech):
    text = (
        "* t\n"
        "MA outp outn tail 0 nfet nfin=8 nf=2\n"
        "MB outn outp tail 0 nfet nfin=8 nf=2\n"
        "MT tail vb 0 0 nfet nfin=8 nf=2\n"
        ".end\n"
    )
    rec = _recognize(tech, text)
    assert _kinds(rec) == ["cross_coupled_pair", "current_source"]


def test_inverter_is_cmos_coverage_only(tech):
    text = (
        "* t\n"
        "Mp out in vdd! vdd! pfet nfin=4 nf=1\n"
        "Mn out in 0 0 nfet nfin=4 nf=1\n"
        ".end\n"
    )
    rec = _recognize(tech, text)
    assert _kinds(rec) == ["inverter"]
    inv = rec.matches[0]
    assert inv.polarity == "cmos"
    assert inv.matched_roles == ()
    assert rec.coverage == 1.0


def test_diode_device(tech):
    text = "* t\nM1 out out 0 0 nfet nfin=8 nf=2\nRb vdd! out 10k\n.end\n"
    rec = _recognize(tech, text)
    assert _kinds(rec) == ["diode_device"]


def test_triple_shared_tail_flags_ambiguity(tech):
    # Three common-source devices on one tail admit three valid
    # differential-pair embeddings; the canonical one claims two
    # devices, the same-kind losers are reported as ambiguities.
    text = (
        "* t\n"
        "MA oa ia tail 0 nfet nfin=8 nf=2\n"
        "MB ob ib tail 0 nfet nfin=8 nf=2\n"
        "MC oc ic tail 0 nfet nfin=8 nf=2\n"
        "MT tail vb 0 0 nfet nfin=8 nf=2\n"
        ".end\n"
    )
    rec = _recognize(tech, text)
    assert _kinds(rec).count("differential_pair") == 1
    assert len(rec.ambiguities) >= 1
    assert all(a.kind == "differential_pair" for a in rec.ambiguities)
    claimed = set(rec.matches[0].device_names)
    for amb in rec.ambiguities:
        assert set(amb.conflicts) & claimed


def test_only_rail_valid_cascode_matches(tech):
    # M2 sits between M1 and M3, but the (M2, M3) embedding is invalid —
    # its bottom source is off-rail — so only (M1, M2) matches and no
    # ambiguity is reported.
    text = (
        "* t\n"
        "M1 a vin 0 0 nfet nfin=8 nf=2\n"
        "M2 b vb1 a 0 nfet nfin=8 nf=2\n"
        "M3 out vb2 b 0 nfet nfin=8 nf=2\n"
        "Rl vdd! out 10k\n"
        ".end\n"
    )
    rec = _recognize(tech, text)
    assert _kinds(rec).count("cascode_stack") == 1
    assert set(rec.matches[0].device_names) == {"1", "2"}
    assert rec.ambiguities == ()
    assert rec.uncovered == ("3",)


def test_source_degenerated_device_is_uncovered(tech):
    text = (
        "* t\n"
        "M1 out vb ns 0 nfet nfin=8 nf=2\n"
        "Rs ns 0 1k\n"
        "Rl vdd! out 10k\n"
        ".end\n"
    )
    rec = _recognize(tech, text)
    assert rec.matches == ()
    assert rec.uncovered == ("1",)
    assert rec.coverage == 0.0


def test_match_order_is_input_order_independent(tech):
    base = [
        "MA outp inp tail 0 nfet nfin=8 nf=2",
        "MB outn inn tail 0 nfet nfin=8 nf=2",
        "MT tail vb 0 0 nfet nfin=8 nf=4",
        "M1 vb vb 0 0 nfet nfin=8 nf=4",
    ]
    fwd = _recognize(tech, "* t\n" + "\n".join(base) + "\n.end\n")
    rev = _recognize(tech, "* t\n" + "\n".join(reversed(base)) + "\n.end\n")
    assert [(m.kind, m.device_names) for m in fwd.matches] == [
        (m.kind, m.device_names) for m in rev.matches
    ]
