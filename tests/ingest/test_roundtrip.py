"""Write→parse round-trip: property-based and over in-tree circuits.

The writer emits shortest-round-trip decimals (``io.spice_writer._fmt``)
and the parser accepts exactly the writer's dialect, so
``parse_spice(write_spice(c))`` must reproduce every element — and a
second ``write_spice`` must be a byte fixpoint.  LDE overrides set by
primitive ``schematic_circuit()``s (``cdb``/``csb`` caps, Vth mismatch)
are not serialized, so equality is defined over the serialized
attributes: names, nets, values, waveforms, sizing and LDE annotations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    CommonSourceAmpCircuit,
    FiveTransistorOta,
    RingOscillatorVco,
    StrongArmComparator,
)
from repro.devices.lde import LdeContext
from repro.devices.mosfet import MosGeometry
from repro.ingest import parse_spice
from repro.io import write_spice
from repro.primitives import PrimitiveLibrary
from repro.spice.elements import Mosfet
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Dc, Pulse, Pwl, Sin
from repro.tech import Technology

# -- equality helpers -------------------------------------------------------


def _element_key(elem):
    """The serialized identity of one element."""
    if isinstance(elem, Mosfet):
        return (
            "M", elem.name, elem.d, elem.g, elem.s, elem.b,
            elem.card.polarity,
            (elem.geometry.nfin, elem.geometry.nf, elem.geometry.m),
            (elem.lde.vth_shift, elem.lde.mobility_factor),
        )
    fields = {
        "Resistor": ("a", "b", "value"),
        "Capacitor": ("a", "b", "value"),
        "Inductor": ("a", "b", "value"),
        "VoltageSource": (
            "plus", "minus", "waveform", "ac_magnitude", "ac_phase_deg",
        ),
        "CurrentSource": (
            "a", "b", "waveform", "ac_magnitude", "ac_phase_deg",
        ),
        "Vcvs": ("plus", "minus", "ctrl_plus", "ctrl_minus", "gain"),
        "Vccs": ("a", "b", "ctrl_plus", "ctrl_minus", "gain"),
    }[type(elem).__name__]
    return (type(elem).__name__, elem.name) + tuple(
        getattr(elem, f) for f in fields
    )


def assert_roundtrip(circuit, tech):
    """Element-for-element equality plus a byte fixpoint."""
    text = write_spice(circuit)
    parsed = parse_spice(text, tech=tech)
    assert len(parsed.elements) == len(circuit.elements)
    for orig, back in zip(circuit.elements, parsed.elements):
        assert _element_key(orig) == _element_key(back)
    assert parsed.ports == circuit.ports
    assert write_spice(parsed) == text


# -- property-based: random circuits ----------------------------------------

NETS = ("0", "n1", "n2", "n3", "na", "nb", "vdd!", "out_p")

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False,
)
positive = st.floats(
    min_value=1e-12, max_value=1e9, allow_nan=False, allow_infinity=False,
)
nonneg = st.one_of(st.just(0.0), positive)
net = st.sampled_from(NETS)


def _pwl(times, values):
    points = tuple(zip(sorted(set(times)), values))
    return Pwl(points=points)


waveform = st.one_of(
    st.builds(Dc, level=finite),
    st.builds(
        Pulse, v1=finite, v2=finite, delay=nonneg, rise=positive,
        fall=positive, width=nonneg, period=nonneg,
    ),
    st.builds(
        Sin, offset=finite, amplitude=finite, frequency=positive,
        delay=nonneg, damping=nonneg,
    ),
    st.builds(
        _pwl,
        times=st.lists(nonneg, min_size=1, max_size=4, unique=True),
        values=st.lists(finite, min_size=4, max_size=4),
    ),
)

# ``AC 0`` is not serialized, so a phase without magnitude cannot
# round-trip; generate either no AC spec or a full one.
ac_spec = st.one_of(
    st.just((0.0, 0.0)),
    st.tuples(positive, finite),
)

geometry = st.builds(
    MosGeometry,
    nfin=st.integers(min_value=1, max_value=64),
    nf=st.integers(min_value=1, max_value=32),
    m=st.integers(min_value=1, max_value=8),
)

lde = st.one_of(
    st.just(LdeContext()),
    st.builds(
        LdeContext,
        vth_shift=st.floats(min_value=-0.1, max_value=0.1,
                            allow_nan=False, allow_infinity=False),
        mobility_factor=st.floats(min_value=0.5, max_value=1.5,
                                  allow_nan=False, allow_infinity=False),
    ),
)


@st.composite
def circuits(draw):
    tech = Technology.default()
    circuit = Circuit(draw(st.sampled_from(("prop", "rt", "gen"))))
    n = draw(st.integers(min_value=1, max_value=10))
    for i in range(n):
        kind = draw(st.sampled_from("RCLVIEGM"))
        name = f"{kind.lower()}{i}"
        a, b = draw(net), draw(net)
        if kind == "R":
            circuit.add_resistor(name, a, b, draw(positive))
        elif kind == "C":
            circuit.add_capacitor(name, a, b, draw(nonneg))
        elif kind == "L":
            circuit.add_inductor(name, a, b, draw(positive))
        elif kind == "V":
            mag, phase = draw(ac_spec)
            circuit.add_vsource(name, a, b, draw(waveform), mag, phase)
        elif kind == "I":
            mag, phase = draw(ac_spec)
            circuit.add_isource(name, a, b, draw(waveform), mag, phase)
        elif kind == "E":
            circuit.add_vcvs(name, a, b, draw(net), draw(net),
                             draw(finite))
        elif kind == "G":
            circuit.add_vccs(name, a, b, draw(net), draw(net),
                             draw(finite))
        else:
            circuit.add_mosfet(
                name, a, draw(net), b, draw(net),
                tech.card(draw(st.sampled_from("np"))),
                draw(geometry), lde=draw(lde),
            )
    if draw(st.booleans()):
        circuit.ports = list(dict.fromkeys(
            draw(st.lists(net.filter(lambda x: x != "0"),
                          min_size=1, max_size=3))
        ))
    return circuit


@given(circuit=circuits())
@settings(max_examples=60, deadline=None)
def test_random_circuits_roundtrip(circuit):
    assert_roundtrip(circuit, Technology.default())


# -- in-tree circuits and primitives ----------------------------------------


@pytest.mark.parametrize(
    "cls",
    [CommonSourceAmpCircuit, FiveTransistorOta, StrongArmComparator,
     RingOscillatorVco],
)
def test_benchmark_schematics_roundtrip(tech, cls):
    assert_roundtrip(cls(tech).schematic(), tech)


def test_every_library_primitive_roundtrips(tech):
    library = PrimitiveLibrary()
    covered = 0
    for name in library.names():
        try:
            primitive = library.create(name, tech, base_fins=48)
        except TypeError:
            continue  # families with extra mandatory arguments
        schematic = primitive.schematic_circuit()
        assert_roundtrip(schematic, tech)
        covered += 1
    assert covered >= 10


def test_testbench_with_ac_sources_roundtrips(tech):
    tb = Circuit("tb")
    tb.add_vsource("sup", "vdd!", "0", 0.8)
    tb.add_vsource("in", "nin", "0", Dc(0.4), 1.0, 0.0)
    tb.add_vsource("clk", "nclk", "0",
                   Pulse(0.0, 0.8, 1e-9, 1e-11, 1e-11, 5e-9, 10e-9))
    tb.add_mosfet("1", "nout", "nin", "0", "0", tech.card("n"),
                  MosGeometry(8, 2, 1))
    tb.add_resistor("l", "vdd!", "nout", 10e3)
    assert_roundtrip(tb, tech)
