"""Cross-module integration invariants.

These tie independent subsystems together: geometry vs extraction,
extraction vs simulation, optimizer vs flow.
"""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.extraction.rc import extract_net_parasitics


def test_extracted_capacitance_matches_geometry(tech, small_dp):
    """The extractor's net C equals the sum over the net's shapes."""
    geo = MosGeometry(8, 4, 3)
    layout = small_dp.generate(geo, "ABAB")
    for net in ("tail", "outp"):
        par = extract_net_parasitics(layout, net, tech)
        manual = 0.0
        for wire in layout.wires_on_net(net):
            layer = tech.stack.metal(wire.layer)
            manual += layer.wire_capacitance(wire.length, wire.width)
        for via in layout.vias_on_net(net):
            manual += tech.stack.via_between(
                via.lower_layer, via.upper_layer
            ).capacitance
        assert par.c_wire == pytest.approx(manual, rel=1e-12)


def test_offset_testbench_reads_back_lde_mismatch(tech, small_dp):
    """An injected Vth mismatch appears 1:1 as measured input offset."""
    from dataclasses import replace

    circuit = small_dp.schematic_circuit()
    ma = circuit.element("MA")
    for delta in (0.002, -0.004):
        trial = circuit.copy(f"mm_{delta}")
        trial.replace_element("MA", replace(ma, vth_mismatch=delta))
        values, _ = small_dp.evaluate(trial)
        assert values["offset"] == pytest.approx(abs(delta), rel=0.12)


def test_pattern_offset_traceable_to_extraction(tech, paper_dp):
    """The AABB offset measured by SPICE matches the extracted dVth gap."""
    geo = MosGeometry(12, 20, 4)
    extracted = paper_dp.extract(paper_dp.generate(geo, "AABB"), geo)
    dvth = abs(
        extracted.device_lde["MA"].vth_shift
        - extracted.device_lde["MB"].vth_shift
    )
    values, _ = paper_dp.evaluate(extracted.build_circuit())
    assert values["offset"] == pytest.approx(dvth, rel=0.25)


def test_flow_assembly_contains_all_devices(tech):
    from repro.circuits import CommonSourceAmpCircuit
    from repro.flow import HierarchicalFlow

    circuit = CommonSourceAmpCircuit(tech, i_bias=50e-6, stage_fins=48,
                                     load_fins=72)
    flow = HierarchicalFlow(tech, n_bins=1, max_wires=2, placer_iterations=100)
    result = flow.run(circuit, flavor="conventional")
    mosfets = {m.name for m in result.assembled.mosfets()}
    assert "xstage.M1" in mosfets
    assert "xload.M1" in mosfets


def test_optimizer_deterministic(tech, small_dp):
    from repro.core import PrimitiveOptimizer
    from repro.devices.mosfet import MosGeometry

    variants = [MosGeometry(8, 4, 3), MosGeometry(8, 6, 2)]
    r1 = PrimitiveOptimizer(n_bins=2, max_wires=3).optimize(
        small_dp, variants=variants, patterns=["ABAB"]
    )
    r2 = PrimitiveOptimizer(n_bins=2, max_wires=3).optimize(
        small_dp, variants=variants, patterns=["ABAB"]
    )
    assert [o.cost for o in r1.options] == [o.cost for o in r2.options]
    assert r1.best.base == r2.best.base


def test_tuned_wire_config_survives_regeneration(tech, small_dp):
    """Regenerating a tuned option reproduces its exact cost."""
    from repro.core.selection import evaluate_option
    from repro.core.tuning import tune_option

    option = evaluate_option(small_dp, MosGeometry(8, 4, 3), "ABAB")
    tuned = tune_option(small_dp, option, max_wires=3)
    regenerated = evaluate_option(
        small_dp, tuned.option.base, tuned.option.pattern, tuned.option.wires
    )
    assert regenerated.cost == pytest.approx(tuned.option.cost, rel=1e-9)
