"""Algorithm 1 runs end-to-end on every MOS primitive family.

This is the "manageable one-time exercise for 20-30 primitives" claim of
the paper's Section II-A: the optimizer must work unmodified on every
library entry.
"""

import pytest

from repro.core import PrimitiveOptimizer
from repro.primitives import PrimitiveLibrary

FAMILIES = [
    "differential_pair",
    "pmos_differential_pair",
    "cascode_differential_pair",
    "switched_differential_pair",
    "current_mirror",
    "pmos_current_mirror",
    "active_current_mirror",
    "cascode_current_mirror",
    "lv_cascode_current_mirror",
    "common_source_amplifier",
    "common_gate_amplifier",
    "common_drain_amplifier",
    "current_source",
    "pmos_current_source",
    "cascode_current_source",
    "diode_load",
    "cascode_diode_load",
    "current_starved_inverter",
    "cross_coupled_pair",
    "pmos_cross_coupled_pair",
    "cross_coupled_inverters",
    "regenerative_pair",
    "switch",
    "pmos_switch",
]


@pytest.fixture(scope="module")
def optimizer():
    return PrimitiveOptimizer(n_bins=2, max_wires=2)


@pytest.mark.parametrize("family", FAMILIES)
def test_family_optimizes(tech, optimizer, family):
    library = PrimitiveLibrary()
    primitive = library.create(family, tech, base_fins=48)
    variants = primitive.variants()[:2]
    report = optimizer.optimize(primitive, variants=variants)
    assert report.options
    assert report.selected
    assert report.tuned
    best = report.best
    assert best.cost >= 0.0
    # Every metric produced a finite deviation.
    for name, dev in best.breakdown.deviations.items():
        assert dev == dev and dev != float("inf"), (family, name)
