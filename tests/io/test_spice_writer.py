"""SPICE netlist serialization."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.io import write_spice
from repro.spice import Circuit
from repro.spice.waveforms import Pulse, Pwl, Sin


def test_rlc_cards(tech):
    c = Circuit("rlc")
    c.ports = ["a"]
    c.add_resistor("r1", "a", "b", 1000.0)
    c.add_capacitor("c1", "b", "0", 1e-15)
    c.add_inductor("l1", "b", "0", 1e-9)
    text = write_spice(c)
    assert "* rlc" in text
    assert "* ports: a" in text
    assert "Rr1 a b 1000" in text
    assert "Cc1 b 0 1e-15" in text
    assert "Ll1 b 0 1e-09" in text
    assert text.rstrip().endswith(".end")


def test_source_waveforms(tech):
    c = Circuit("src")
    c.add_vsource("vp", "a", "0", Pulse(0.0, 0.8, delay=1e-9), ac_magnitude=1.0)
    c.add_isource("is", "a", "0", Sin(0.1, 0.2, 1e9))
    c.add_vsource("vw", "b", "0", Pwl(points=((0.0, 0.0), (1e-9, 1.0))))
    c.add_resistor("r", "a", "b", 1.0)
    text = write_spice(c)
    assert "PULSE(0 0.8 1e-09" in text
    assert "AC 1 0" in text
    assert "SIN(0.1 0.2 1e+09" in text
    assert "PWL(0 0 1e-09 1)" in text


def test_mosfet_card_with_lde(tech):
    from repro.devices.lde import LdeContext

    c = Circuit("m")
    c.add_mosfet(
        "m1", "d", "g", "s", "0", tech.nmos, MosGeometry(8, 4, 2),
        lde=LdeContext(vth_shift=0.003, mobility_factor=0.98),
    )
    c.add_vsource("vd", "d", "0", 0.8)
    text = write_spice(c)
    assert "Mm1 d g s 0 nfet nfin=8 nf=4 m=2" in text
    assert "dvth=0.003" in text


def test_controlled_sources(tech):
    c = Circuit("es")
    c.add_vcvs("e1", "o", "0", "i", "0", 2.0)
    c.add_vccs("g1", "0", "o", "i", "0", 1e-3)
    c.add_resistor("r", "o", "i", 1.0)
    text = write_spice(c)
    assert "Ee1 o 0 i 0 2" in text
    assert "Gg1" in text


def test_extracted_primitive_roundtrippable(tech, small_dp):
    geo = MosGeometry(8, 4, 3)
    circuit = small_dp.layout_circuit(geo, "ABBA")
    text = write_spice(circuit, title="extracted DP")
    assert "* extracted DP" in text
    assert "Rrt_tail" in text
    assert "MMA" in text and "MMB" in text


def test_full_assembly_serializes(tech):
    """A complete post-layout circuit assembly exports cleanly."""
    from repro.circuits import CommonSourceAmpCircuit
    from repro.circuits.base import LayoutChoice
    from repro.devices.mosfet import MosGeometry

    circuit = CommonSourceAmpCircuit(tech, i_bias=50e-6, stage_fins=48,
                                     load_fins=72)
    choices = {
        "xstage": LayoutChoice(base=MosGeometry(8, 6, 1), pattern="ABAB"),
        "xload": LayoutChoice(base=MosGeometry(8, 9, 1), pattern="ABAB"),
    }
    asm = circuit.assembled(choices)
    text = write_spice(asm, title="csamp assembly")
    # One card per element, plus the title line and the .end terminator
    # (the assembly has no ports, so no ports comment line).
    assert len(text.splitlines()) == len(asm.elements) + 2
    assert ".end" in text
