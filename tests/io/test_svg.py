"""SVG layout rendering."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.io import layout_to_svg


@pytest.fixture(scope="module")
def dp_layout(small_dp):
    return small_dp.generate(MosGeometry(8, 4, 3), "ABBA")


def test_svg_well_formed(dp_layout):
    svg = layout_to_svg(dp_layout)
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert svg.count("<rect") > 10


def test_svg_contains_all_layers(dp_layout):
    svg = layout_to_svg(dp_layout)
    # Active, M1 stubs, M2 straps, M3 rails are all drawn.
    from repro.io.svg import LAYER_COLORS

    for layer in ("active", "M1", "M2", "M3"):
        assert LAYER_COLORS[layer] in svg


def test_svg_port_labels(dp_layout):
    svg = layout_to_svg(dp_layout)
    for net in ("inp", "inn", "outp", "outn", "tail"):
        assert f">{net}</text>" in svg


def test_svg_scale_controls_size(dp_layout):
    small = layout_to_svg(dp_layout, scale=0.01)
    large = layout_to_svg(dp_layout, scale=0.04)

    def width_of(svg):
        key = 'width="'
        start = svg.index(key, svg.index("viewBox")) + len(key)
        return float(svg[start : svg.index('"', start)])

    assert width_of(large) > width_of(small)
