"""Detailed-route realization."""

import pytest

from repro.errors import RoutingError
from repro.pnr.detailed import realize_routes
from repro.pnr.global_router import GlobalRoute, RouteSegment


def simple_route(net, length=4000):
    route = GlobalRoute(net=net)
    route.segments.append(RouteSegment("M3", 0, 0, length, 0))
    return route


def test_single_wire_realization(tech):
    detailed = realize_routes({"n1": simple_route("n1")}, {"n1": 1}, tech)
    d = detailed["n1"]
    assert d.n_parallel == 1
    assert len(d.wires) == 1
    assert d.resistance > 0
    assert d.capacitance > 0


def test_parallel_wires_divide_r_multiply_c(tech):
    d1 = realize_routes({"n": simple_route("n")}, {"n": 1}, tech)["n"]
    d4 = realize_routes({"n": simple_route("n")}, {"n": 4}, tech)["n"]
    assert d4.resistance == pytest.approx(d1.resistance / 4)
    assert d4.capacitance == pytest.approx(4 * d1.capacitance)
    assert len(d4.wires) == 4


def test_default_wire_count_is_one(tech):
    detailed = realize_routes({"n": simple_route("n")}, {}, tech)
    assert detailed["n"].n_parallel == 1


def test_matched_pairs_share_count(tech):
    routes = {"outp": simple_route("outp"), "outn": simple_route("outn")}
    detailed = realize_routes(
        routes, {"outp": 3, "outn": 1}, tech, matched_pairs=[("outp", "outn")]
    )
    assert detailed["outp"].n_parallel == 3
    assert detailed["outn"].n_parallel == 3
    assert detailed["outp"].matched_with == "outn"


def test_matched_pair_missing_route_raises(tech):
    with pytest.raises(RoutingError):
        realize_routes(
            {"outp": simple_route("outp")},
            {},
            tech,
            matched_pairs=[("outp", "outn")],
        )


def test_vertical_segment_geometry(tech):
    route = GlobalRoute(net="v")
    route.segments.append(RouteSegment("M4", 0, 0, 0, 3000))
    detailed = realize_routes({"v": route}, {"v": 2}, tech)
    for wire in detailed["v"].wires:
        assert wire.rect.height >= wire.rect.width  # vertical shape
