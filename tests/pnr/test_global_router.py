"""Grid global router."""

import pytest

from repro.errors import RoutingError
from repro.pnr import GlobalRouter
from repro.pnr.global_router import GlobalRoute, RouteSegment


def test_two_pin_route_length():
    router = GlobalRouter(width=10_000, height=10_000, pitch=1000)
    route = router.route_net("n1", [(0, 0), (5000, 3000)])
    # Manhattan distance in grid units.
    assert route.total_length == 8000
    assert route.segments


def test_route_layers_by_direction():
    router = GlobalRouter(width=10_000, height=10_000, pitch=1000)
    route = router.route_net("n1", [(0, 0), (5000, 0)])
    assert all(s.layer == "M3" for s in route.segments)
    route_v = router.route_net("n2", [(0, 0), (0, 5000)])
    assert all(s.layer == "M4" for s in route_v.segments)


def test_multi_pin_uses_mst():
    router = GlobalRouter(width=20_000, height=20_000, pitch=1000)
    route = router.route_net("n1", [(0, 0), (10_000, 0), (5000, 5000)])
    # MST beats a naive star through every pair.
    assert route.total_length <= 10_000 + 10_000
    assert route.via_count >= 2


def test_single_pin_empty_route():
    router = GlobalRouter(width=5000, height=5000)
    route = router.route_net("n1", [(100, 100)])
    assert route.segments == []
    assert route.total_length == 0


def test_congestion_spreads_routes():
    router = GlobalRouter(width=20_000, height=20_000, pitch=1000)
    first = router.route_net("n1", [(0, 5000), (19_000, 5000)])
    second = router.route_net("n2", [(0, 5000), (19_000, 5000)])
    # The second route pays history cost; it may detour (same or longer).
    assert second.total_length >= first.total_length


def test_length_on_layer():
    route = GlobalRoute(net="n")
    route.segments.append(RouteSegment("M3", 0, 0, 3000, 0))
    route.segments.append(RouteSegment("M4", 3000, 0, 3000, 2000))
    assert route.length_on("M3") == 3000
    assert route.length_on("M4") == 2000
    assert route.dominant_layer() == "M3"


def test_to_route_info(tech):
    route = GlobalRoute(net="out")
    route.segments.append(RouteSegment("M3", 0, 0, 2000, 0))
    route.via_count = 2
    info = route.to_route_info(tech, symmetric_with=("outn",))
    assert info.net == "out"
    assert info.layer == "M3"
    assert info.length_nm == 2000.0
    assert info.symmetric_with == ("outn",)
    assert info.via_resistance > 0


def test_invalid_region():
    with pytest.raises(RoutingError):
        GlobalRouter(width=0, height=100)


def test_pins_outside_region_snap_inside():
    router = GlobalRouter(width=5000, height=5000, pitch=1000)
    route = router.route_net("n1", [(-2000, 0), (9000, 9000)])
    assert route.total_length > 0


def test_layer_promotion_by_length(tech):
    def info_for(length):
        route = GlobalRoute(net="n")
        route.segments.append(RouteSegment("M3", 0, 0, length, 0))
        route.via_count = 2
        return route.to_route_info(tech)

    assert info_for(5_000).layer == "M3"
    assert info_for(20_000).layer == "M4"
    assert info_for(50_000).layer == "M5"


def test_layer_promotion_reduces_resistance(tech):
    from repro.core.port_constraints import route_rc

    short = GlobalRoute(net="n")
    short.segments.append(RouteSegment("M3", 0, 0, 50_000, 0))
    short.via_count = 1
    promoted = short.to_route_info(tech)
    r_promoted, _ = route_rc(promoted, tech, 1)
    # The same 50um on min-ish M3 would be far more resistive.
    m3 = tech.stack.metal("M3")
    r_m3 = m3.wire_resistance(50_000, 2 * m3.min_width)
    assert r_promoted < r_m3 / 2
