"""Sequence-pair SA placer."""

import pytest

from repro.errors import PlacementError
from repro.pnr import Block, SaPlacer


def blocks_grid(n, w=1000, h=1000):
    return [Block(name=f"b{i}", options=[(w, h)]) for i in range(n)]


def overlapping(placement, blocks):
    """Check every pair of placed blocks for overlap."""
    rects = []
    by_name = {b.name: b for b in blocks}
    for name, (x, y) in placement.positions.items():
        w, h = by_name[name].options[placement.chosen_option[name]]
        rects.append((x, y, x + w, y + h))
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            a, b = rects[i], rects[j]
            if a[2] > b[0] and b[2] > a[0] and a[3] > b[1] and b[3] > a[1]:
                return True
    return False


def test_single_block(tech):
    placer = SaPlacer(blocks_grid(1))
    placement = placer.place(iterations=10)
    assert placement.positions["b0"] == (0, 0)


def test_no_overlaps_small(tech):
    blocks = blocks_grid(5)
    placement = SaPlacer(blocks, seed=3).place(iterations=300)
    assert not overlapping(placement, blocks)


def test_no_overlaps_mixed_sizes(tech):
    blocks = [
        Block("a", [(3000, 1000)]),
        Block("b", [(1000, 3000)]),
        Block("c", [(2000, 2000)]),
        Block("d", [(500, 500)]),
    ]
    placement = SaPlacer(blocks, seed=7).place(iterations=500)
    assert not overlapping(placement, blocks)


def test_deterministic_given_seed():
    blocks = blocks_grid(4)
    p1 = SaPlacer(blocks, seed=42).place(iterations=200)
    p2 = SaPlacer(blocks, seed=42).place(iterations=200)
    assert p1.positions == p2.positions


def test_option_selection_explored():
    # One block offers a huge and a tiny option; SA should find the tiny.
    blocks = [
        Block("big", [(10_000, 10_000), (1000, 1000)]),
        Block("other", [(1000, 1000)]),
    ]
    placement = SaPlacer(blocks, seed=5).place(iterations=800)
    assert placement.chosen_option["big"] == 1


def test_connected_blocks_pulled_together():
    blocks = [
        Block("a", [(1000, 1000)], nets=["n1"]),
        Block("b", [(1000, 1000)], nets=["n1"]),
        Block("c", [(1000, 1000)], nets=["n2"]),
        Block("d", [(1000, 1000)], nets=["n2"]),
        Block("e", [(1000, 1000)]),
    ]
    placement = SaPlacer(blocks, seed=11, wirelength_weight=10.0).place(
        iterations=1500
    )
    assert placement.hpwl >= 0
    assert not overlapping(placement, blocks)


def test_area_reported(tech):
    blocks = blocks_grid(4)
    placement = SaPlacer(blocks, seed=1).place(iterations=300)
    assert placement.area >= 4 * 1000 * 1000
    assert placement.width > 0 and placement.height > 0


def test_validation():
    with pytest.raises(PlacementError):
        SaPlacer([])
    with pytest.raises(PlacementError):
        Block("x", options=[])
    with pytest.raises(PlacementError):
        Block("x", options=[(0, 10)])
    with pytest.raises(PlacementError):
        SaPlacer([Block("a", [(1, 1)]), Block("a", [(1, 1)])])
