"""Property-based checks of sequence-pair packing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pnr import Block, SaPlacer


def overlapping(positions, sizes):
    rects = [
        (x, y, x + sizes[name][0], y + sizes[name][1])
        for name, (x, y) in positions.items()
    ]
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            a, b = rects[i], rects[j]
            if a[2] > b[0] and b[2] > a[0] and a[3] > b[1] and b[3] > a[1]:
                return True
    return False


block_sizes = st.lists(
    st.tuples(
        st.integers(min_value=100, max_value=5000),
        st.integers(min_value=100, max_value=5000),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=40, deadline=None)
@given(block_sizes, st.randoms(use_true_random=False))
def test_packing_never_overlaps(sizes, rng):
    blocks = [Block(f"b{i}", [wh]) for i, wh in enumerate(sizes)]
    placer = SaPlacer(blocks, spacing=0, seed=1)
    names = [b.name for b in blocks]
    seq1 = names[:]
    seq2 = names[:]
    rng.shuffle(seq1)
    rng.shuffle(seq2)
    options = {n: 0 for n in names}
    positions, width, height = placer._pack(seq1, seq2, options)
    size_map = {b.name: b.options[0] for b in blocks}
    assert not overlapping(positions, size_map)
    # Every block fits inside the reported bounding box.
    for name, (x, y) in positions.items():
        w, h = size_map[name]
        assert 0 <= x and 0 <= y
        assert x + w <= width
        assert y + h <= height


@settings(max_examples=30, deadline=None)
@given(block_sizes)
def test_packed_area_at_least_sum(sizes):
    blocks = [Block(f"b{i}", [wh]) for i, wh in enumerate(sizes)]
    placer = SaPlacer(blocks, spacing=0, seed=1)
    names = [b.name for b in blocks]
    positions, width, height = placer._pack(names, names, {n: 0 for n in names})
    total = sum(w * h for w, h in sizes)
    assert width * height >= total


@settings(max_examples=20, deadline=None)
@given(block_sizes)
def test_identity_sequences_pack_in_a_row(sizes):
    """seq1 == seq2 means every block is right-of the previous one."""
    blocks = [Block(f"b{i}", [wh]) for i, wh in enumerate(sizes)]
    placer = SaPlacer(blocks, spacing=0, seed=1)
    names = [b.name for b in blocks]
    positions, _w, _h = placer._pack(names, names, {n: 0 for n in names})
    xs = [positions[n][0] for n in names]
    assert xs == sorted(xs)
    assert all(positions[n][1] == 0 for n in names)
