"""Amplifier primitives: auto-biasing and metric testbenches."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.primitives import (
    CommonDrainAmplifier,
    CommonGateAmplifier,
    CommonSourceAmplifier,
)


@pytest.fixture(scope="module")
def cs(tech):
    return CommonSourceAmplifier(tech, base_fins=96)


def test_auto_bias_hits_target_current(tech, cs):
    from repro.primitives import testbenches as tbh

    tb = cs.bias_testbench(cs.schematic_circuit())
    op = tbh.run_op(tb, tech)
    assert abs(op.i("vout")) == pytest.approx(cs.i_target, rel=0.01)


def test_explicit_vin_override(tech):
    cs = CommonSourceAmplifier(tech, base_fins=96, vin=0.5)
    assert cs.vin == 0.5


def test_gm_and_rout_positive(cs):
    ref = cs.schematic_reference()
    assert ref["gm"] > 0
    assert ref["rout"] > 0


def test_gm_scales_with_current(tech):
    low = CommonSourceAmplifier(tech, base_fins=96, i_target=20e-6)
    high = CommonSourceAmplifier(tech, base_fins=96, i_target=80e-6)
    assert high.schematic_reference()["gm"] > low.schematic_reference()["gm"]


def test_layout_degrades_metrics(cs):
    ref = cs.schematic_reference()
    vals, _ = cs.evaluate(cs.layout_circuit(MosGeometry(8, 6, 2), "ABAB"))
    assert vals["gm"] < ref["gm"]


def test_common_gate_biases(tech):
    cg = CommonGateAmplifier(tech, base_fins=96)
    ref = cg.schematic_reference()
    assert ref["gm"] > 0
    assert cg.v_gate > cg.vin  # gate above source for an NMOS


def test_common_drain_gain_below_unity(tech):
    cd = CommonDrainAmplifier(tech, base_fins=96)
    ref = cd.schematic_reference()
    assert 0.5 < ref["gain"] < 1.0  # source follower
    assert ref["rout"] > 0


def test_follower_rout_near_inverse_gm(tech):
    cd = CommonDrainAmplifier(tech, base_fins=96)
    ref = cd.schematic_reference()
    # Rout of a follower ~ 1/gm; sanity bound within a factor of 3.
    from repro.primitives import testbenches as tbh

    tb = cd.bias_testbench(cd.schematic_circuit())
    op = tbh.run_op(tb, tech)
    gm = op.mos("dut.M1")["gm"]
    assert ref["rout"] == pytest.approx(1.0 / gm, rel=2.0)
