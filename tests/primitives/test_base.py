"""MosPrimitive interface invariants over the whole library."""

import pytest

from repro.primitives import MosPrimitive, PrimitiveLibrary
from repro.primitives.base import WEIGHT_HIGH, WEIGHT_LOW, WEIGHT_MEDIUM

MOS_FAMILIES = [
    "differential_pair",
    "pmos_differential_pair",
    "cascode_differential_pair",
    "switched_differential_pair",
    "current_mirror",
    "pmos_current_mirror",
    "active_current_mirror",
    "cascode_current_mirror",
    "lv_cascode_current_mirror",
    "common_source_amplifier",
    "common_gate_amplifier",
    "common_drain_amplifier",
    "current_source",
    "pmos_current_source",
    "cascode_current_source",
    "diode_load",
    "cascode_diode_load",
    "current_starved_inverter",
    "cross_coupled_pair",
    "pmos_cross_coupled_pair",
    "cross_coupled_inverters",
    "regenerative_pair",
    "switch",
    "pmos_switch",
]


@pytest.fixture(scope="module")
def library():
    return PrimitiveLibrary()


def make(library, tech, family):
    return library.create(family, tech, base_fins=48)


def test_library_size(library):
    # The paper cites 20-30 primitives; we register 27.
    assert 20 <= len(library) <= 30


def test_library_unknown_name(library, tech):
    from repro.errors import OptimizationError

    with pytest.raises(OptimizationError):
        library.create("bogus", tech)


def test_library_register_duplicate(library):
    from repro.errors import OptimizationError

    with pytest.raises(OptimizationError):
        library.register("differential_pair", lambda tech: None)


@pytest.mark.parametrize("family", MOS_FAMILIES)
def test_templates_well_formed(library, tech, family):
    prim = make(library, tech, family)
    templates = prim.templates()
    assert templates
    names = [t.name for t in templates]
    assert len(set(names)) == len(names)
    for t in templates:
        assert t.polarity in ("n", "p")
        assert {"d", "g", "s"} <= set(t.terminals)


@pytest.mark.parametrize("family", MOS_FAMILIES)
def test_metrics_use_paper_weights(library, tech, family):
    prim = make(library, tech, family)
    metrics = prim.metrics()
    assert metrics
    for m in metrics:
        assert m.weight in (WEIGHT_HIGH, WEIGHT_MEDIUM, WEIGHT_LOW)


@pytest.mark.parametrize("family", MOS_FAMILIES)
def test_tuning_terminals_reference_real_nets(library, tech, family):
    prim = make(library, tech, family)
    nets = set()
    for t in prim.templates():
        nets.update(t.terminals.values())
    for terminal in prim.tuning_terminals():
        for net in terminal.nets:
            assert net in nets, f"{family}: tuning net {net} unknown"


@pytest.mark.parametrize("family", MOS_FAMILIES)
def test_matched_group_nonempty(library, tech, family):
    prim = make(library, tech, family)
    assert prim.matched_group()


@pytest.mark.parametrize("family", MOS_FAMILIES)
def test_schematic_circuit_ports(library, tech, family):
    prim = make(library, tech, family)
    circuit = prim.schematic_circuit()
    assert circuit.ports == list(prim.port_nets())
    assert len(circuit.mosfets()) == len(prim.templates())


@pytest.mark.parametrize("family", MOS_FAMILIES)
def test_variants_preserve_fins(library, tech, family):
    prim = make(library, tech, family)
    for base in prim.variants():
        assert base.nfins_total == prim.base_fins


def test_internal_nets_not_ports(tech, small_dp):
    from repro.primitives import CascodeDifferentialPair

    prim = CascodeDifferentialPair(tech, base_fins=96)
    assert not any(p.startswith("int_") for p in prim.port_nets())


def test_random_offset_scales(tech):
    from repro.primitives import DifferentialPair

    small = DifferentialPair(tech, base_fins=96)
    large = DifferentialPair(tech, base_fins=384)
    assert large.random_offset_sigma() == pytest.approx(
        small.random_offset_sigma() / 2.0
    )


def test_metric_lookup(small_dp):
    assert small_dp.metric("gm").weight == WEIGHT_MEDIUM
    from repro.errors import OptimizationError

    with pytest.raises(OptimizationError):
        small_dp.metric("bogus")


def test_schematic_reference_cached(small_dp):
    a = small_dp.schematic_reference()
    b = small_dp.schematic_reference()
    assert a is b
