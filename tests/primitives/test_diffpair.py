"""Differential-pair metric testbenches."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.primitives import (
    CascodeDifferentialPair,
    DifferentialPair,
    PmosDifferentialPair,
    SwitchedDifferentialPair,
)


@pytest.fixture(scope="module")
def dp(tech):
    return DifferentialPair(tech, base_fins=96)


@pytest.fixture(scope="module")
def reference(dp):
    return dp.schematic_reference()


def test_schematic_gm_sane(dp, reference):
    # gm of a weakly-inverted pair: within (Id/2)/(n*Ut) of the WI limit.
    gm_max = dp.i_tail / 2.0 / (dp.tech.nmos.slope_factor * 0.02585)
    assert 0.2 * gm_max < reference["gm"] <= 1.05 * gm_max


def test_schematic_offset_zero(reference):
    assert reference["offset"] == pytest.approx(0.0, abs=1e-6)


def test_gm_over_ctotal_consistent(dp, reference):
    assert reference["gm_over_ctotal"] > 0
    ct = reference["gm"] / reference["gm_over_ctotal"]
    assert dp.c_load < ct < 50 * dp.c_load


def test_layout_degrades_gm(dp, reference):
    vals, _ = dp.evaluate(dp.layout_circuit(MosGeometry(8, 4, 3), "ABBA"))
    assert vals["gm"] < reference["gm"]


def test_layout_abba_offset_small(dp):
    vals, _ = dp.evaluate(dp.layout_circuit(MosGeometry(8, 4, 3), "ABBA"))
    assert vals["offset"] < 0.1 * dp.random_offset_sigma()


def test_layout_aabb_offset_large(dp):
    vals, _ = dp.evaluate(dp.layout_circuit(MosGeometry(8, 6, 2), "AABB"))
    abba, _ = dp.evaluate(dp.layout_circuit(MosGeometry(8, 6, 2), "ABBA"))
    assert vals["offset"] > 5 * abba["offset"]


def test_evaluation_uses_three_simulations(dp):
    _, sims = dp.evaluate(dp.schematic_circuit())
    assert sims == 3  # Gm, Cout, offset (Table V: 3 metrics per config)


def test_injected_mismatch_measured_as_offset(dp, tech):
    from dataclasses import replace

    circuit = dp.schematic_circuit()
    ma = circuit.element("MA")
    circuit.replace_element("MA", replace(ma, vth_mismatch=0.005))
    vals, _ = dp.evaluate(circuit)
    # The input-referred offset of a Vth mismatch is the mismatch itself.
    assert vals["offset"] == pytest.approx(0.005, rel=0.1)


def test_pmos_variant_evaluates(tech):
    pdp = PmosDifferentialPair(tech, base_fins=96)
    ref = pdp.schematic_reference()
    assert ref["gm"] > 0
    assert ref["offset"] == pytest.approx(0.0, abs=1e-6)


def test_cascode_variant_evaluates(tech):
    cdp = CascodeDifferentialPair(tech, base_fins=96)
    ref = cdp.schematic_reference()
    assert ref["gm"] > 0


def test_cascode_has_correlated_terminals(tech):
    cdp = CascodeDifferentialPair(tech, base_fins=96)
    terminals = {t.name: t for t in cdp.tuning_terminals()}
    assert "drain" in terminals["cascode"].correlated_with


def test_switched_variant_evaluates(tech):
    sdp = SwitchedDifferentialPair(tech, base_fins=96)
    ref = sdp.schematic_reference()
    assert ref["gm"] > 0


def test_switched_pair_switch_not_matched(tech):
    sdp = SwitchedDifferentialPair(tech, base_fins=96)
    assert "MSW" not in sdp.matched_group()


def test_symmetric_net_pairs_include_inputs(dp):
    assert ("inp", "inn") in dp.symmetric_net_pairs()
