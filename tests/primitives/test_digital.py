"""Digital-like primitives: CSI, cross-coupled structures, switches."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.primitives import (
    CrossCoupledInverters,
    CrossCoupledPair,
    CurrentStarvedInverter,
    PmosCrossCoupledPair,
    PmosSwitch,
    RegenerativePair,
    TransmissionSwitch,
)


@pytest.fixture(scope="module")
def csi(tech):
    return CurrentStarvedInverter(tech, base_fins=24)


def test_csi_metrics_positive(csi):
    ref = csi.schematic_reference()
    assert ref["delay"] > 0
    assert ref["current"] > 1e-6
    assert ref["gain"] > 1.0


def test_csi_three_metrics_three_sims(csi):
    _, sims = csi.evaluate(csi.schematic_circuit())
    assert sims == 3


def test_csi_starving_slows_delay(tech):
    fast = CurrentStarvedInverter(tech, base_fins=24, v_ctrl=0.6)
    slow = CurrentStarvedInverter(tech, base_fins=24, v_ctrl=0.35)
    assert slow.schematic_reference()["delay"] > fast.schematic_reference()["delay"]


def test_csi_starving_reduces_current(tech):
    fast = CurrentStarvedInverter(tech, base_fins=24, v_ctrl=0.6)
    slow = CurrentStarvedInverter(tech, base_fins=24, v_ctrl=0.35)
    assert slow.schematic_reference()["current"] < fast.schematic_reference()["current"]


def test_csi_layout_slower_than_schematic(csi):
    vals, _ = csi.evaluate(csi.layout_circuit(MosGeometry(4, 6, 1), "ABAB"))
    assert vals["delay"] > csi.schematic_reference()["delay"]


def test_csi_correlated_starve_terminals(csi):
    terms = {t.name: t for t in csi.tuning_terminals()}
    assert "starve_n" in terms["starve_p"].correlated_with


def test_cross_coupled_pair_negative_gm(tech):
    xcp = CrossCoupledPair(tech, base_fins=48)
    ref = xcp.schematic_reference()
    assert ref["neg_gm"] > 1e-5
    assert ref["cout"] > 0


def test_pmos_cross_coupled_pair(tech):
    xcp = PmosCrossCoupledPair(tech, base_fins=48)
    assert xcp.schematic_reference()["neg_gm"] > 1e-5


def test_cross_coupled_inverters(tech):
    latch = CrossCoupledInverters(tech, base_fins=24)
    ref = latch.schematic_reference()
    assert ref["neg_gm"] > 0


def test_regenerative_pair(tech):
    rp = RegenerativePair(tech, base_fins=48)
    ref = rp.schematic_reference()
    assert ref["neg_gm"] > 0
    assert ref["cout"] > 0


def test_switch_on_resistance(tech):
    sw = TransmissionSwitch(tech, base_fins=48)
    ref = sw.schematic_reference()
    assert 1.0 < ref["ron"] < 10e3
    assert ref["coff"] > 0


def test_switch_ron_scales_inverse_fins(tech):
    small = TransmissionSwitch(tech, base_fins=24)
    large = TransmissionSwitch(tech, base_fins=96)
    assert large.schematic_reference()["ron"] < small.schematic_reference()["ron"]


def test_pmos_switch(tech):
    sw = PmosSwitch(tech, base_fins=48)
    ref = sw.schematic_reference()
    assert ref["ron"] < 20e3


def test_differential_delay_cell_metrics(tech):
    from repro.primitives import DifferentialDelayCell

    cell = DifferentialDelayCell(tech, base_fins=8, drive_ratio=4)
    ref = cell.schematic_reference()
    assert ref["delay"] > 0
    assert ref["current"] > 1e-6
    assert ref["gain"] > 0


def test_differential_delay_cell_starving(tech):
    from repro.primitives import DifferentialDelayCell

    # Within the ring's usable control range the delay is monotone in
    # the starving level (below ~0.45 V the keeper dominates and the
    # ring latches anyway).
    fast = DifferentialDelayCell(tech, base_fins=8, drive_ratio=4, v_ctrl=0.6)
    slow = DifferentialDelayCell(tech, base_fins=8, drive_ratio=4, v_ctrl=0.5)
    assert slow.schematic_reference()["delay"] > fast.schematic_reference()["delay"]
    assert slow.schematic_reference()["current"] < fast.schematic_reference()["current"]


def test_differential_delay_cell_layout_slower(tech):
    from repro.devices.mosfet import MosGeometry
    from repro.primitives import DifferentialDelayCell

    cell = DifferentialDelayCell(tech, base_fins=8, drive_ratio=4)
    base = cell.variants()[0]
    values, sims = cell.evaluate(cell.layout_circuit(base, "ABAB"))
    assert values["delay"] > cell.schematic_reference()["delay"]
    assert sims == 3


def test_differential_delay_cell_symmetric_pairs(tech):
    from repro.primitives import DifferentialDelayCell

    cell = DifferentialDelayCell(tech, base_fins=8)
    pairs = cell.symmetric_net_pairs()
    assert ("outa", "outb") in pairs
    assert ("ina", "inb") in pairs


def test_differential_delay_cell_drive_ratio_validation(tech):
    from repro.primitives import DifferentialDelayCell

    with pytest.raises(ValueError):
        DifferentialDelayCell(tech, base_fins=8, drive_ratio=0)
