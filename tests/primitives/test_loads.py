"""Load primitives."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.primitives import (
    CascodeCurrentSource,
    CascodeDiodeLoad,
    CurrentSourceLoad,
    DiodeLoad,
    PmosCurrentSource,
)


def test_current_source_hits_target(tech):
    cs = CurrentSourceLoad(tech, base_fins=96)
    ref = cs.schematic_reference()
    assert ref["current"] == pytest.approx(cs.i_target, rel=0.01)


def test_pmos_current_source_hits_target(tech):
    cs = PmosCurrentSource(tech, base_fins=96)
    ref = cs.schematic_reference()
    assert ref["current"] == pytest.approx(cs.i_target, rel=0.01)


def test_cascode_rout_beats_simple(tech):
    simple = CurrentSourceLoad(tech, base_fins=96)
    casc = CascodeCurrentSource(tech, base_fins=96)
    assert casc.schematic_reference()["rout"] > 3 * simple.schematic_reference()["rout"]


def test_layout_current_degrades(tech):
    cs = CurrentSourceLoad(tech, base_fins=96)
    ref = cs.schematic_reference()
    vals, _ = cs.evaluate(cs.layout_circuit(MosGeometry(8, 6, 2), "ABAB"))
    # The conventional story: layout parasitics reduce the current.
    assert vals["current"] < ref["current"]


def test_diode_load_impedance_near_inverse_gm(tech):
    dl = DiodeLoad(tech, base_fins=96)
    ref = dl.schematic_reference()
    assert ref["impedance"] > 0
    assert ref["cout"] > 0


def test_cascode_diode_stacks(tech):
    dl = DiodeLoad(tech, base_fins=96)
    cdl = CascodeDiodeLoad(tech, base_fins=96)
    # Two stacked diodes: roughly twice the impedance.
    r1 = dl.schematic_reference()["impedance"]
    r2 = cdl.schematic_reference()["impedance"]
    assert r2 > 1.4 * r1


def test_explicit_v_bias_override(tech):
    cs = CurrentSourceLoad(tech, base_fins=96, v_bias=0.5)
    assert cs.v_bias == 0.5
