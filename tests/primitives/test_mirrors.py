"""Current-mirror metric testbenches."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.primitives import (
    ActiveCurrentMirror,
    CascodeCurrentMirror,
    LowVoltageCascodeMirror,
    PassiveCurrentMirror,
    PmosCurrentMirror,
)


@pytest.fixture(scope="module")
def cm(tech):
    return PassiveCurrentMirror(tech, base_fins=96, ratio=1)


def test_schematic_ratio_near_unity(cm):
    ref = cm.schematic_reference()
    assert ref["current_ratio"] == pytest.approx(1.0, abs=0.08)


def test_ratioed_mirror(tech):
    cm8 = PassiveCurrentMirror(tech, base_fins=48, ratio=8)
    ref = cm8.schematic_reference()
    assert ref["current_ratio"] == pytest.approx(8.0, rel=0.1)


def test_ratio_validation(tech):
    with pytest.raises(ValueError):
        PassiveCurrentMirror(tech, ratio=0)


def test_cout_positive(cm):
    assert cm.schematic_reference()["cout"] > 0


def test_layout_ratio_shifts(cm):
    vals, _ = cm.evaluate(cm.layout_circuit(MosGeometry(8, 6, 2), "ABAB"))
    ref = cm.schematic_reference()
    assert vals["current_ratio"] != ref["current_ratio"]
    assert vals["current_ratio"] == pytest.approx(ref["current_ratio"], rel=0.15)


def test_ratioed_templates_have_m_ratio(tech):
    cm4 = PassiveCurrentMirror(tech, base_fins=48, ratio=4)
    by_name = {t.name: t for t in cm4.templates()}
    assert by_name["MREF"].m_ratio == 1
    assert by_name["MOUT"].m_ratio == 4


def test_pmos_mirror(tech):
    cm = PmosCurrentMirror(tech, base_fins=96, ratio=1)
    ref = cm.schematic_reference()
    assert ref["current_ratio"] == pytest.approx(1.0, abs=0.1)


def test_active_mirror_weights(tech):
    am = ActiveCurrentMirror(tech, base_fins=96, ratio=1)
    weights = {m.name: m.weight for m in am.metrics()}
    assert weights["cout"] == 0.5  # medium for the active mirror
    pm = PassiveCurrentMirror(tech, base_fins=96, ratio=1)
    weights_p = {m.name: m.weight for m in pm.metrics()}
    assert weights_p["cout"] == 0.1  # low for the passive mirror


def test_cascode_mirror_evaluates(tech):
    cm = CascodeCurrentMirror(tech, base_fins=96, ratio=1)
    ref = cm.schematic_reference()
    assert ref["current_ratio"] == pytest.approx(1.0, abs=0.15)
    assert ref["rout"] > 0


def test_cascode_rout_beats_simple(tech):
    simple = PassiveCurrentMirror(tech, base_fins=96, ratio=1)
    casc = CascodeCurrentMirror(tech, base_fins=96, ratio=1)
    from repro.primitives import testbenches as tbh

    r_simple = tbh.port_resistance(
        simple.cout_testbench(simple.schematic_circuit()), tech, "vout"
    )
    r_casc = tbh.port_resistance(
        casc.cout_testbench(casc.schematic_circuit()), tech, "vout"
    )
    assert r_casc > 3 * r_simple


def test_lv_cascode_evaluates(tech):
    cm = LowVoltageCascodeMirror(tech, base_fins=96, ratio=1)
    ref = cm.schematic_reference()
    assert ref["current_ratio"] == pytest.approx(1.0, abs=0.2)


def test_layout_with_lde_disabled_better_ratio(tech, tech_no_lde):
    from repro.primitives import PassiveCurrentMirror as CM

    geo = MosGeometry(16, 6, 1)
    with_lde = CM(tech, base_fins=96, ratio=1)
    without = CM(tech_no_lde, base_fins=96, ratio=1)
    v1, _ = with_lde.evaluate(with_lde.layout_circuit(geo, "ABAB"))
    v2, _ = without.evaluate(without.layout_circuit(geo, "ABAB"))
    d1 = abs(v1["current_ratio"] - with_lde.schematic_reference()["current_ratio"])
    d2 = abs(v2["current_ratio"] - without.schematic_reference()["current_ratio"])
    # LDEs contribute real mirror error (the paper's motivation from [10]).
    assert d1 > d2 * 0.5  # LDE error present (not strictly ordered: wires too)
