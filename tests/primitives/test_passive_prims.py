"""Passive primitives."""

import pytest

from repro.primitives import (
    MomCapacitorPrimitive,
    PolyResistorPrimitive,
    SpiralInductorPrimitive,
)


def test_capacitor_schematic_value(tech):
    cap = MomCapacitorPrimitive(tech, value=100e-15)
    ref = cap.schematic_reference()
    assert ref["capacitance"] == pytest.approx(100e-15, rel=0.02)


def test_capacitor_layout_value_close(tech):
    cap = MomCapacitorPrimitive(tech, value=100e-15)
    variant = cap.variants()[0]
    vals, _ = cap.evaluate(cap.layout_circuit(variant))
    assert vals["capacitance"] == pytest.approx(100e-15, rel=0.1)


def test_capacitor_more_segments_higher_corner(tech):
    cap = MomCapacitorPrimitive(tech, value=100e-15)
    v1, v8 = cap.variants()[0], cap.variants()[-1]
    f1 = cap.evaluate(cap.layout_circuit(v1))[0]["frequency"]
    f8 = cap.evaluate(cap.layout_circuit(v8))[0]["frequency"]
    assert f8 > f1  # shorter fingers, lower ESR, higher corner


def test_resistor_schematic_value(tech):
    res = PolyResistorPrimitive(tech, value=10e3)
    ref = res.schematic_reference()
    assert ref["resistance"] == pytest.approx(10e3, rel=0.01)


def test_resistor_folding_adds_contacts(tech):
    res = PolyResistorPrimitive(tech, value=10e3)
    v1, v8 = res.variants()[0], res.variants()[-1]
    r1 = res.evaluate(res.layout_circuit(v1))[0]["resistance"]
    r8 = res.evaluate(res.layout_circuit(v8))[0]["resistance"]
    assert r8 > r1


def test_inductor_value(tech):
    ind = SpiralInductorPrimitive(tech, value=1e-9)
    variant = ind.variants()[0]
    vals, _ = ind.evaluate(ind.layout_circuit(variant))
    assert vals["inductance"] == pytest.approx(1e-9, rel=0.15)


def test_inductor_q_grows_with_segments(tech):
    ind = SpiralInductorPrimitive(tech, value=1e-9)
    v1, v8 = ind.variants()[0], ind.variants()[-1]
    q1 = ind.evaluate(ind.layout_circuit(v1))[0]["q_factor"]
    q8 = ind.evaluate(ind.layout_circuit(v8))[0]["q_factor"]
    assert q8 > q1


def test_validation(tech):
    from repro.errors import OptimizationError

    with pytest.raises(OptimizationError):
        MomCapacitorPrimitive(tech, value=0.0)
    with pytest.raises(OptimizationError):
        PolyResistorPrimitive(tech, value=-1.0)
    with pytest.raises(OptimizationError):
        SpiralInductorPrimitive(tech, value=0.0)
