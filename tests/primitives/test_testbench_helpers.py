"""The shared testbench helper functions."""

import numpy as np
import pytest

from repro.devices.mosfet import MosGeometry
from repro.errors import MeasureError
from repro.primitives import testbenches as tbh
from repro.spice import Circuit


def test_attach_dut_maps_ports_identically(tech, small_dp):
    dut = small_dp.schematic_circuit()
    tb = Circuit("tb")
    tbh.attach_dut(tb, dut)
    # Port nets keep their names; internals are prefixed.
    nodes = set()
    for e in tb.elements:
        from repro.spice.netlist import element_nodes

        nodes.update(element_nodes(e))
    for port in dut.ports:
        assert port in nodes


def test_freq_index_log_distance():
    freqs = np.logspace(6, 10, 5)  # 1e6 .. 1e10
    assert tbh.freq_index(freqs, 1.0e8) == 2
    assert tbh.freq_index(freqs, 2.0e6) == 0
    assert tbh.freq_index(freqs, 9.0e9) == 4


def test_port_capacitance_of_known_cap(tech):
    tb = Circuit("c")
    tb.add_vsource("vp", "a", "0", 0.0, ac_magnitude=1.0)
    tb.add_capacitor("c1", "a", "0", 7e-15)
    assert tbh.port_capacitance(tb, tech, "vp") == pytest.approx(7e-15, rel=0.01)


def test_port_resistance_of_known_resistor(tech):
    tb = Circuit("r")
    tb.add_vsource("vp", "a", "0", 0.0, ac_magnitude=1.0)
    tb.add_resistor("r1", "a", "0", 3.3e3)
    assert tbh.port_resistance(tb, tech, "vp") == pytest.approx(3.3e3, rel=0.01)


def test_port_resistance_negative_reported_as_magnitude(tech):
    # A negative conductance (VCCS feedback) reports its magnitude.
    tb = Circuit("neg")
    tb.add_vsource("vp", "a", "0", 0.0, ac_magnitude=1.0)
    tb.add_vccs("g1", "a", "0", "a", "0", 2e-3)  # pulls current out of a
    tb.add_resistor("stab", "a", "0", 200.0)  # keep DC solvable
    r = tbh.port_resistance(tb, tech, "vp")
    assert r > 0


def test_solve_gate_bias_monotone_increasing(tech):
    from repro.devices.mosfet import MosGeometry

    def build(v):
        c = Circuit("bias")
        c.add_vsource("vg", "g", "0", v)
        c.add_vsource("vd", "d", "0", 0.6)
        c.add_mosfet("m1", "d", "g", "0", "0", tech.nmos, MosGeometry(8, 4, 1))
        return c

    v = tbh.solve_gate_bias(
        tech, build, lambda op: abs(op.i("vd")), i_target=50e-6
    )
    op_check = tbh.run_op(build(v), tech)
    assert abs(op_check.i("vd")) == pytest.approx(50e-6, rel=0.01)


def test_standard_pulse_polarity():
    rise = tbh.standard_pulse(0.0, 0.8)
    fall = tbh.standard_pulse(0.8, 0.0)
    assert rise.value(0.0) == 0.0
    assert rise.value(1e-9) == 0.8
    assert fall.value(0.0) == 0.8
    assert fall.value(1e-9) == 0.0


def test_dc_offset_bisection_finds_injected_offset(tech):
    # A linear "circuit": response = x - 3 mV.
    def build(x):
        c = Circuit("lin")
        c.add_vsource("vx", "a", "0", x - 3e-3)
        c.add_resistor("r", "a", "0", 1e3)
        return c

    root = tbh.dc_offset_bisection(
        build, tech, lambda op: op.v("a"), lo=-0.05, hi=0.05
    )
    assert root == pytest.approx(3e-3, abs=1e-6)
