"""Fixtures for the fault-tolerant runtime tests.

``REPRO_FAULT_SEEDS`` (comma-separated, default ``"0"``) widens the
fault-injection seed matrix: ``make faults`` runs the suite under seeds
0,1,2,3 while a plain ``pytest tests/runtime`` stays fast with one seed.
"""

from __future__ import annotations

import os

import pytest

from repro import Technology


def _fault_seeds() -> list[int]:
    raw = os.environ.get("REPRO_FAULT_SEEDS", "0")
    return [int(s) for s in raw.split(",") if s.strip()]


def pytest_generate_tests(metafunc):
    if "fault_seed" in metafunc.fixturenames:
        metafunc.parametrize("fault_seed", _fault_seeds())


@pytest.fixture(scope="session")
def small_primitive():
    """A small, fast-to-simulate differential pair."""
    from repro.primitives import DifferentialPair

    return DifferentialPair(Technology.default(), base_fins=8, name="rt_dp")
