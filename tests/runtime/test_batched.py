"""Batched (vectorized multi-variant) solves: byte-identical to serial.

ISSUE acceptance: a run with ``--batch K`` produces bitwise-identical
metrics, journals, cache traffic and reports to ``--batch 1`` — for any
batch width, any variant order, and under the fault-injection seed
matrix (where batching disengages but output must not move).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import PrimitiveOptimizer, Technology
from repro.devices.mosfet import MosGeometry
from repro.errors import ConvergenceError, MeasureError
from repro.runtime import EvalRuntime, RetryPolicy, resolve_batch
from repro.runtime import context as eval_context
from repro.runtime.evalcache import EvalCache
from repro.runtime.faults import FaultSpec, inject
from repro.spice import Circuit, CompiledCircuit
from repro.spice import measure
from repro.spice.ac import ac_analysis, ac_analysis_many
from repro.spice.dc import dc_operating_point, dc_operating_points

BATCH = 8


def _compiled(circuit, tech):
    return CompiledCircuit(circuit, tech.rules)


def _divider(v_in, r2):
    c = Circuit("div")
    c.add_vsource("v1", "in", "0", v_in)
    c.add_resistor("r1", "in", "mid", 1000.0)
    c.add_resistor("r2", "mid", "0", r2)
    return c


def _diode_nmos(tech, bias, nf):
    c = Circuit("dio")
    c.add_isource("i1", "0", "d", bias)
    c.add_mosfet("m1", "d", "d", "0", "0", tech.nmos, MosGeometry(8, nf, 1))
    return c


def _fresh_dp(name="batch_dp"):
    from repro.primitives import DifferentialPair

    return DifferentialPair(Technology.default(), base_fins=8, name=name)


def _optimizer(batch, run_dir=None, resume=False):
    return PrimitiveOptimizer(
        n_bins=2,
        max_wires=3,
        policy=RetryPolicy(max_retries=2),
        batch=batch,
        run_dir=run_dir,
        resume=resume,
    )


def _fingerprint(report) -> tuple:
    return (
        [(o.describe(), o.cost) for o in report.options],
        [(o.describe(), o.cost) for o in report.selected],
        [(t.option.describe(), t.option.cost) for t in report.tuned],
        [(s.name, s.simulations) for s in report.stages],
        report.total_simulations,
        report.best.cost,
        [f.to_dict() for f in report.failures.failures],
        report.cache_stats,
    )


# -- resolve_batch -------------------------------------------------------


def test_resolve_batch_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    assert resolve_batch(None) == 1
    assert resolve_batch(4) == 4
    assert resolve_batch(0) == 1  # clamped
    assert resolve_batch(-2) == 1
    monkeypatch.setenv("REPRO_BATCH", "6")
    assert resolve_batch(None) == 6
    assert resolve_batch(3) == 3  # explicit beats env
    monkeypatch.setenv("REPRO_BATCH", "0")
    assert resolve_batch(None) == 1  # env 0 clamps to off


# -- DC: stacked lockstep Newton vs per-circuit serial -------------------


def test_dc_operating_points_bitwise(tech):
    circuits = [_divider(0.5 + 0.25 * k, 1000.0 * (k + 1)) for k in range(4)]
    circuits += [_diode_nmos(tech, 50e-6 * (k + 1), 2) for k in range(4)]
    compileds = [_compiled(c, tech) for c in circuits]
    serial = [dc_operating_point(c) for c in compileds]
    batched = dc_operating_points(compileds)
    assert len(batched) == len(serial)
    for got, ref in zip(batched, serial):
        # Bitwise: the lockstep kernel replays the serial float ops.
        assert np.array_equal(got.x, ref.x)
        assert got.recovery == ref.recovery


def test_dc_operating_points_mixed_convergence_captures_failures(tech):
    # An explicit zero Newton budget makes every member fail serially;
    # the batched wrapper must disengage (the lockstep kernel does not
    # consult per-evaluation context) and capture the same exceptions
    # per member instead of raising on the first.
    compileds = [
        _compiled(_divider(1.0, 2000.0), tech),
        _compiled(_diode_nmos(tech, 100e-6, 4), tech),
    ]
    ctx = eval_context.EvalContext(newton_max_iterations=0)
    with eval_context.evaluation(ctx):
        serial_errs = []
        for c in compileds:
            with pytest.raises(ConvergenceError) as err:
                dc_operating_point(c)
            serial_errs.append(str(err.value))
        batched = dc_operating_points(compileds)
    for got, ref in zip(batched, serial_errs):
        assert isinstance(got, ConvergenceError)
        assert str(got) == ref


def test_newton_budget_honored_exactly(tech):
    # Satellite: an explicit RetryPolicy budget must override the
    # max(120, 2*nodes) heuristic verbatim — even 0 — instead of being
    # silently clamped back up to the floor.
    compiled = _compiled(_diode_nmos(tech, 100e-6, 4), tech)
    baseline = dc_operating_point(compiled)
    with eval_context.evaluation(eval_context.EvalContext(newton_max_iterations=0)):
        with pytest.raises(ConvergenceError):
            dc_operating_point(compiled)
    # A budget at/above what the solve needs reproduces the default.
    with eval_context.evaluation(
        eval_context.EvalContext(newton_max_iterations=200)
    ):
        op = dc_operating_point(compiled)
    assert np.array_equal(op.x, baseline.x)
    # None keeps the heuristic.
    with eval_context.evaluation(eval_context.EvalContext()):
        op = dc_operating_point(compiled)
    assert np.array_equal(op.x, baseline.x)


# -- AC: stacked frequency sweeps ----------------------------------------


def test_ac_analysis_many_bitwise(tech):
    circuits = []
    for k in range(4):
        c = Circuit(f"rc{k}")
        c.add_vsource("vin", "in", "0", 0.0, ac_magnitude=1.0)
        c.add_resistor("r1", "in", "out", 1e3 * (k + 1))
        c.add_capacitor("c1", "out", "0", 1e-12)
        circuits.append(c)
    compileds = [_compiled(c, tech) for c in circuits]
    ops = [dc_operating_point(c) for c in compileds]
    kw = dict(f_start=1e3, f_stop=1e10, points_per_decade=5)
    serial = [ac_analysis(c, op, **kw) for c, op in zip(compileds, ops)]
    batched = ac_analysis_many(compileds, ops, **kw)
    for got, ref in zip(batched, serial):
        assert np.array_equal(got.freqs, ref.freqs)
        assert np.array_equal(got.solutions, ref.solutions)


# -- lockstep bisection --------------------------------------------------


def test_find_dc_zero_many_bitwise():
    roots = [0.013, -0.4, 0.2499, 0.0]

    def evaluate_many(indices, xs):
        return [xs[j] - roots[i] for j, i in enumerate(indices)]

    serial = [
        measure.find_dc_zero(lambda x, r=r: x - r, -0.5, 0.5) for r in roots
    ]
    batched = measure.find_dc_zero_many(evaluate_many, len(roots), -0.5, 0.5)
    assert batched == serial  # bitwise: same bisection arithmetic


def test_find_dc_zero_many_captures_member_failures():
    # Member 1 has no sign change, member 2 raises mid-bisection; both
    # are captured in place while member 0 still converges.
    def evaluate_many(indices, xs):
        out = []
        for j, i in enumerate(indices):
            if i == 1:
                out.append(xs[j] + 10.0)
            elif i == 2:
                out.append(ValueError("boom"))
            else:
                out.append(xs[j] - 0.1)
        return out

    results = measure.find_dc_zero_many(evaluate_many, 3, -0.5, 0.5)
    with pytest.raises(MeasureError) as serial_err:
        measure.find_dc_zero(lambda x: x + 10.0, -0.5, 0.5)
    assert results[0] == measure.find_dc_zero(lambda x: x - 0.1, -0.5, 0.5)
    assert isinstance(results[1], MeasureError)
    assert str(results[1]) == str(serial_err.value)
    assert isinstance(results[2], ValueError)


# -- property: shuffled selection sweeps, batched vs serial --------------


@pytest.mark.parametrize("shuffle_seed", [0, 1, 2])
def test_shuffled_selection_batch_matches_serial(shuffle_seed):
    prim = _fresh_dp()
    variants = prim.variants()
    random.Random(shuffle_seed).shuffle(variants)

    def run(width):
        from repro.core.selection import evaluate_options

        runtime = EvalRuntime(cache=EvalCache(), batch=width)
        options = evaluate_options(
            _fresh_dp(), variants=variants, runtime=runtime
        )
        return runtime, options

    serial_rt, serial = run(1)
    batch_rt, batched = run(BATCH)
    assert len(batched) == len(serial)
    for got, ref in zip(batched, serial):
        assert (got.base, got.pattern) == (ref.base, ref.pattern)
        assert got.values == ref.values  # bitwise: dict equality on floats
        assert got.simulations == ref.simulations
        assert got.cache_key == ref.cache_key
        assert got.breakdown.cost == ref.breakdown.cost
    # Cache traffic replays identically (keys, hit/miss/store sequence).
    assert batch_rt.cache.stats == serial_rt.cache.stats
    assert sorted(batch_rt.cache._entries) == sorted(serial_rt.cache._entries)
    # The fast path actually engaged — this is not serial-vs-serial.
    assert batch_rt.solver_stats.batched_solves > 0
    assert serial_rt.solver_stats.batched_solves == 0


def test_batched_report_identical_to_serial():
    serial = _optimizer(batch=1).optimize(_fresh_dp())
    batched = _optimizer(batch=BATCH).optimize(_fresh_dp())
    assert _fingerprint(batched) == _fingerprint(serial)


def test_batched_journal_byte_identical(tmp_path):
    _optimizer(batch=1, run_dir=tmp_path / "serial").optimize(_fresh_dp())
    _optimizer(batch=BATCH, run_dir=tmp_path / "batched").optimize(_fresh_dp())
    serial = (tmp_path / "serial" / "batch_dp.jsonl").read_bytes()
    batched = (tmp_path / "batched" / "batch_dp.jsonl").read_bytes()
    assert batched == serial


def test_batched_report_identical_under_faults(fault_seed):
    # Injection disengages the fast path member-by-member; the output
    # must not move by a byte either way.
    spec = FaultSpec(dc_fail_rate=0.3)
    with inject(spec, seed=fault_seed) as serial_injector:
        serial = _optimizer(batch=1).optimize(_fresh_dp())
    with inject(spec, seed=fault_seed) as batched_injector:
        batched = _optimizer(batch=BATCH).optimize(_fresh_dp())
    assert _fingerprint(batched) == _fingerprint(serial)
    assert batched_injector.counters == serial_injector.counters
    assert batched_injector.fired == serial_injector.fired


def test_batch_env_knob_is_safe(monkeypatch):
    monkeypatch.setenv("REPRO_BATCH", str(BATCH))
    batched = _optimizer(batch=None).optimize(_fresh_dp())
    monkeypatch.delenv("REPRO_BATCH")
    serial = _optimizer(batch=None).optimize(_fresh_dp())
    assert _fingerprint(batched) == _fingerprint(serial)
