"""Chaos harness: injected process death, torn files, and full disks.

ISSUE acceptance: a run that has workers SIGKILLed under it, its journal
tail torn, and a cache entry corrupted still completes — with a final
report byte-identical to the clean run's (modulo recorded failure
entries) — and two concurrent processes sharing one ``--cache-dir``
finish with zero torn entries and the size cap enforced.

Chaos decisions ride the keyed :class:`~repro.runtime.faults
.FaultInjector` (``worker_kill_rate`` / ``worker_kill_keys``), so every
scenario here is deterministic and seed-matrix-able: ``make chaos`` runs
this file under ``REPRO_FAULT_SEEDS=0,1,2,3``.  Set
``REPRO_CHAOS_ARTIFACTS`` to a directory to keep each scenario's run
dir (journals, evalcache) for post-mortem — CI uploads them on failure.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro import PrimitiveOptimizer, Technology
from repro.runtime import EvalCache, RetryPolicy, WORKER_LOST
from repro.runtime.evalcache import payload_checksum
from repro.runtime.faults import FaultSpec, inject
from repro.runtime.supervise import (
    DOWNGRADE_POOL_REPLACED,
    DOWNGRADE_SERIAL_FALLBACK,
)

JOBS = 2


@pytest.fixture
def chaos_dir(tmp_path, request):
    """Scratch dir for a chaos scenario's run state.

    Honors ``REPRO_CHAOS_ARTIFACTS``: when set, run dirs land under it
    (named per test) and survive the run, so CI can upload journals and
    cache state of a failing scenario as artifacts.
    """
    root = os.environ.get("REPRO_CHAOS_ARTIFACTS")
    if not root:
        return tmp_path
    keep = Path(root) / request.node.name.replace("/", "_")
    keep.mkdir(parents=True, exist_ok=True)
    return keep


def _fresh_dp():
    from repro.primitives import DifferentialPair

    return DifferentialPair(Technology.default(), base_fins=8, name="ch_dp")


def _optimizer(jobs, run_dir=None, resume=False, **cache_kwargs):
    return PrimitiveOptimizer(
        n_bins=2,
        max_wires=3,
        policy=RetryPolicy(max_retries=2),
        jobs=jobs,
        run_dir=run_dir,
        resume=resume,
        **cache_kwargs,
    )


def _fingerprint(report) -> tuple:
    """Everything the determinism contract covers (downgrade-ledger
    entries excluded: they record *how* the run survived, not what it
    computed)."""
    return (
        [(o.describe(), o.cost) for o in report.options],
        [(o.describe(), o.cost) for o in report.selected],
        [(t.option.describe(), t.option.cost) for t in report.tuned],
        [(s.name, s.simulations) for s in report.stages],
        report.total_simulations,
        report.best.cost,
        [f.to_dict() for f in report.failures.failures],
        report.cache_stats,
    )


def _journal_keys(run_dir, stage="sel:") -> list[str]:
    lines = (Path(run_dir) / "ch_dp.jsonl").read_text().splitlines()
    keys = [json.loads(line)["key"] for line in lines]
    return [k for k in keys if k.startswith(stage)]


# -- worker SIGKILL chaos ------------------------------------------------


def test_killed_workers_recover_byte_identical(tmp_path, fault_seed):
    baseline = _optimizer(jobs=1, run_dir=tmp_path / "full").optimize(_fresh_dp())
    doomed = _journal_keys(tmp_path / "full")[1]

    # One guaranteed kill (an explicit selection key) plus a seeded rate
    # draw over every other task; each doomed task dies once and its
    # re-dispatch recovers.
    spec = FaultSpec(
        worker_kill_rate=0.2,
        worker_kill_keys=(doomed,),
        worker_kill_times=1,
    )
    with inject(spec, seed=fault_seed):
        chaotic = _optimizer(jobs=JOBS).optimize(_fresh_dp())

    assert _fingerprint(chaotic) == _fingerprint(baseline)
    # The supervision was exercised and the ledger says so — each rung
    # at most once, no matter how many pools died.  (An extreme seed may
    # legitimately exhaust the replacement budget and add the serial-
    # fallback rung; results stay identical either way.)
    assert chaotic.failures.downgrades[0] == DOWNGRADE_POOL_REPLACED
    assert set(chaotic.failures.downgrades) <= {
        DOWNGRADE_POOL_REPLACED,
        DOWNGRADE_SERIAL_FALLBACK,
    }


def test_poison_task_degrades_to_recorded_failure(tmp_path):
    baseline = _optimizer(jobs=1, run_dir=tmp_path / "full").optimize(_fresh_dp())
    poison = _journal_keys(tmp_path / "full")[0]

    # The poison task kills every fresh worker it is given: the run must
    # complete with a recorded WORKER-LOST failure, never an exception.
    spec = FaultSpec(worker_kill_keys=(poison,), worker_kill_times=99)
    with inject(spec, seed=0):
        report = _optimizer(jobs=JOBS).optimize(_fresh_dp())

    lost = [f for f in report.failures.failures if f.code == WORKER_LOST]
    assert len(lost) == 1 and lost[0].key == poison
    assert DOWNGRADE_POOL_REPLACED in report.failures.downgrades
    assert report.best is not None  # the other options carried the run
    assert baseline.best is not None


# -- combined: kills + torn journal + corrupt cache entry ----------------


def test_torn_journal_and_corrupt_cache_resume_matches_clean(
    chaos_dir, fault_seed
):
    baseline = _optimizer(jobs=1, run_dir=chaos_dir / "full").optimize(
        _fresh_dp()
    )
    doomed = _journal_keys(chaos_dir / "full")[0]
    spec = FaultSpec(worker_kill_keys=(doomed,), worker_kill_times=1)

    run_dir = chaos_dir / "run"
    with inject(spec, seed=fault_seed):
        first = _optimizer(jobs=JOBS, run_dir=run_dir).optimize(_fresh_dp())
    assert _fingerprint(first) == _fingerprint(baseline)

    # Crash artifacts: a torn journal tail and a bit-flipped cache entry.
    journal = run_dir / "ch_dp.jsonl"
    with journal.open("ab") as handle:
        handle.write(b'{"key": "in-flight", "sta')
    victim = sorted((run_dir / "evalcache").glob("*.json"))[0]
    raw = bytearray(victim.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    victim.write_bytes(bytes(raw))

    with inject(spec, seed=fault_seed):
        resumed = _optimizer(jobs=JOBS, run_dir=run_dir, resume=True).optimize(
            _fresh_dp()
        )

    assert _fingerprint(resumed) == _fingerprint(baseline)
    # The truncated journal is clean JSONL end-to-end again.
    for line in journal.read_text().splitlines():
        json.loads(line)


# -- full disk -----------------------------------------------------------


def test_enospc_downgrades_cache_to_memory_only(tmp_path, monkeypatch):
    import errno

    baseline = _optimizer(jobs=1).optimize(_fresh_dp())

    cache_dir = tmp_path / "evalcache"
    real = Path.write_text

    def enospc(self, *args, **kwargs):
        if str(self).startswith(str(cache_dir)):
            raise OSError(errno.ENOSPC, "No space left on device")
        return real(self, *args, **kwargs)

    monkeypatch.setattr(Path, "write_text", enospc)
    report = _optimizer(jobs=1, cache_dir=cache_dir).optimize(_fresh_dp())

    # Same results from the memory tier, plus a single downgrade entry.
    assert _fingerprint(report) == _fingerprint(baseline)
    assert len(report.failures.downgrades) == 1
    assert "No space left" in report.failures.downgrades[0]


# -- concurrent processes sharing one --cache-dir ------------------------


def _hammer(shared_dir, cap, proc_seed, queue):
    """One competitor process: mixed put/get traffic on the shared dir."""
    cache = EvalCache(disk_dir=shared_dir, max_disk_bytes=cap)
    puts = gets = 0
    for i in range(40):
        key = f"k{(i + proc_seed * 7) % 25:02d}"
        if i % 3 == proc_seed % 3:
            hit = cache.get(key)
            gets += 1
            assert hit is None or set(hit["values"]) == {"gm", "pad"}
        else:
            cache.put(key, {"gm": float(i), "pad": float(proc_seed)}, 1)
            puts += 1
    queue.put(
        {
            "puts": puts,
            "gets": gets,
            "stats": cache.stats.to_dict(),
            "downgrade": cache.downgrade_reason,
        }
    )


def _check_shared_stats(results):
    """Stats sum correctly: every lookup is a hit or a miss, and stores
    never exceed (repeat-key-deduplicated) puts."""
    for r in results:
        stats = r["stats"]
        assert stats["hits"] + stats["misses"] == r["gets"]
        assert 0 < stats["stored"] <= r["puts"]
        assert stats["corrupt"] == 0


def test_concurrent_processes_share_cache_dir(tmp_path):
    shared = tmp_path / "shared-cache"
    cap = 2048
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_hammer, args=(shared, cap, seed, queue))
        for seed in (1, 2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
    results = [queue.get(timeout=10) for _ in procs]
    assert all(p.exitcode == 0 for p in procs)

    # Neither process was forced off the disk tier.
    assert all(r["downgrade"] is None for r in results)
    _check_shared_stats(results)

    # Zero torn entries: every surviving file parses and passes its
    # checksum; no tmp litter; nothing was quarantined.
    for entry in shared.glob("*.json"):
        data = json.loads(entry.read_text())
        values = {str(k): float(v) for k, v in data["values"].items()}
        assert data["checksum"] == payload_checksum(
            values, int(data["simulations"])
        )
    assert not list(shared.glob("*.tmp"))
    quarantine = shared / "quarantine"
    assert not quarantine.exists() or not list(quarantine.glob("*"))

    # The size cap holds once the last writer's eviction pass settles.
    final = EvalCache(disk_dir=shared, max_disk_bytes=cap)
    final._evict_disk()
    total = sum(p.stat().st_size for p in shared.glob("*.json"))
    assert total <= cap
