"""Sweep-journal crash consistency and replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.runtime import CONV_DC, EvalFailure, SweepJournal


def test_success_round_trip(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record_success("k1", {"cost": 1.5})
        journal.record_success("k2", {"cost": 2.5})
    with SweepJournal(path, resume=True) as journal:
        assert len(journal) == 2
        assert "k1" in journal
        assert journal.lookup("k1")["payload"] == {"cost": 1.5}
        assert journal.lookup("missing") is None


def test_failure_round_trip(tmp_path):
    path = tmp_path / "sweep.jsonl"
    failure = EvalFailure(CONV_DC, "selection", "k1", message="boom", attempt=1)
    with SweepJournal(path) as journal:
        journal.record_failure("k1", [failure])
    with SweepJournal(path, resume=True) as journal:
        assert journal.lookup("k1")["status"] == "failed"
        assert journal.journaled_failures("k1") == [failure]
        assert journal.journaled_failures("other") == []


def test_fresh_journal_truncates(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record_success("stale", {})
    with SweepJournal(path, resume=False) as journal:
        assert len(journal) == 0
    with SweepJournal(path, resume=True) as journal:
        assert "stale" not in journal


def test_torn_final_line_is_tolerated(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record_success("done", {"cost": 1.0})
    with path.open("a") as handle:
        handle.write('{"key": "in-flight", "status"')  # killed mid-write
    with SweepJournal(path, resume=True) as journal:
        assert "done" in journal
        assert "in-flight" not in journal


def test_torn_tail_is_truncated_on_resume(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record_success("done", {"cost": 1.0})
    clean = path.read_bytes()
    torn = b'{"key": "in-flight", "sta'
    with path.open("ab") as handle:
        handle.write(torn)
    with SweepJournal(path, resume=True) as journal:
        assert journal.truncated_tail == len(torn)
        journal.record_success("next", {"cost": 2.0})
    # The file is clean JSONL end-to-end: the torn bytes are gone and
    # every line parses.
    raw = path.read_bytes()
    assert raw.startswith(clean)
    for line in raw.decode().splitlines():
        json.loads(line)
    # A second resume sees no artifact of the first crash.
    with SweepJournal(path, resume=True) as journal:
        assert journal.truncated_tail == 0
        assert "done" in journal and "next" in journal


def test_clean_resume_reports_zero_truncated_tail(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record_success("done", {"cost": 1.0})
    with SweepJournal(path, resume=True) as journal:
        assert journal.truncated_tail == 0


def test_journal_flush_hook(tmp_path):
    # graceful_shutdown flushes every registered sink; the journal's
    # flush() must be callable at any point (even with nothing buffered)
    # and after close().
    from repro.runtime import flush_all

    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record_success("a", {})
        journal.flush()
        assert flush_all() >= 1
    flush_all()  # closed journals must not raise through the handler


def test_interior_corruption_raises(tmp_path):
    path = tmp_path / "sweep.jsonl"
    lines = [
        json.dumps({"key": "a", "status": "ok", "payload": {}}),
        "garbage not json",
        json.dumps({"key": "b", "status": "ok", "payload": {}}),
    ]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(CheckpointError):
        SweepJournal(path, resume=True)


def test_unknown_status_raises(tmp_path):
    path = tmp_path / "sweep.jsonl"
    path.write_text(json.dumps({"key": "a", "status": "maybe"}) + "\n")
    path.write_text(
        path.read_text() + json.dumps({"key": "b", "status": "ok"}) + "\n"
    )
    with pytest.raises(CheckpointError):
        SweepJournal(path, resume=True)


def test_resume_missing_file_starts_empty(tmp_path):
    with SweepJournal(tmp_path / "fresh.jsonl", resume=True) as journal:
        assert len(journal) == 0


def test_last_entry_wins(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record_failure("k", [EvalFailure(CONV_DC, "s", "k")])
        journal.record_success("k", {"cost": 3.0})
    with SweepJournal(path, resume=True) as journal:
        assert journal.lookup("k")["status"] == "ok"
