"""Content-addressed evaluation cache.

ISSUE acceptance: evaluating the same circuit content twice hits the
cache (0 simulations), while any sizing (nfin/nf/m), pattern or wire
change produces a different content key and misses.
"""

from __future__ import annotations

import json

import pytest

from repro import PrimitiveOptimizer, Technology
from repro.cellgen.generator import WireConfig
from repro.devices.mosfet import MosGeometry
from repro.runtime import EvalCache, analysis_signature, evaluate_circuit_cached
from repro.runtime.faults import FaultSpec, inject


@pytest.fixture(scope="module")
def prim():
    from repro.primitives import DifferentialPair

    return DifferentialPair(Technology.default(), base_fins=8, name="ec_dp")


def _circuit(prim, geom=MosGeometry(8, 4, 3), pattern="ABAB", wires=None):
    wires = wires or WireConfig()
    layout = prim.generate(geom, pattern, wires, verify=False)
    return prim.extract(layout, geom).build_circuit()


# -- key stability -------------------------------------------------------


def test_same_content_same_key(prim):
    cache = EvalCache()
    # Two independent generate/extract passes over identical inputs.
    a = cache.key_for(prim, _circuit(prim))
    b = cache.key_for(prim, _circuit(prim))
    assert a == b


def test_any_sizing_change_changes_key(prim):
    cache = EvalCache()
    base = cache.key_for(prim, _circuit(prim, MosGeometry(8, 4, 3)))
    variants = [
        _circuit(prim, MosGeometry(4, 4, 3)),  # nfin
        _circuit(prim, MosGeometry(8, 2, 3)),  # nf
        _circuit(prim, MosGeometry(8, 4, 1)),  # m
        _circuit(prim, pattern="AABB"),  # pattern
        _circuit(prim, wires=WireConfig().with_straps("tail", 2)),  # wires
    ]
    keys = [cache.key_for(prim, c) for c in variants]
    assert base not in keys
    assert len(set(keys)) == len(keys)


def test_instance_name_excluded_from_key(prim):
    from repro.primitives import DifferentialPair

    other = DifferentialPair(Technology.default(), base_fins=8, name="ec_dp2")
    assert analysis_signature(prim) == analysis_signature(other)
    cache = EvalCache()
    assert cache.key_for(prim, _circuit(prim)) == cache.key_for(
        other, _circuit(other)
    )


def test_weight_override_changes_key(prim):
    cache = EvalCache()
    circuit = _circuit(prim)
    plain = cache.key_for(prim, circuit)
    weighted = cache.key_for(prim, circuit, weight_override={"gm": 2.0})
    assert plain != weighted


# -- hit/miss semantics --------------------------------------------------


def test_repeat_evaluation_hits_and_skips_simulation(prim):
    cache = EvalCache()
    values1, sims1, key1 = evaluate_circuit_cached(prim, _circuit(prim), cache)
    assert sims1 > 0
    values2, sims2, key2 = evaluate_circuit_cached(prim, _circuit(prim), cache)
    assert sims2 == 0
    assert key1 == key2
    assert values2 == values1
    assert cache.stats.hits == 1
    assert cache.stats.stored == 1


def test_value_affecting_injector_bypasses_cache(prim):
    cache = EvalCache()
    # A value-affecting injector bypasses: injected faults key on
    # evaluation keys, so content hits would change which faults fire.
    with inject(FaultSpec(dc_fail_rate=1e-9)):
        values, sims, key = evaluate_circuit_cached(prim, _circuit(prim), cache)
    assert sims > 0
    assert key is None
    assert len(cache) == 0
    assert cache.stats.stored == 0


def test_kill_only_injector_keeps_cache(prim):
    # Worker-kill chaos never changes evaluation values, so kill-only
    # specs keep the cache enabled — chaos runs stay byte-comparable to
    # clean runs (same cache_stats).
    assert not FaultSpec(worker_kill_rate=1.0, worker_kill_keys=("k",)).affects_values
    assert FaultSpec(bad_metric_rate=0.1).affects_values
    cache = EvalCache()
    with inject(FaultSpec(worker_kill_keys=("some-task",))):
        values, sims, key = evaluate_circuit_cached(prim, _circuit(prim), cache)
    assert sims > 0
    assert key is not None
    assert cache.stats.stored == 1
    with inject(FaultSpec(worker_kill_keys=("some-task",))):
        values2, sims2, key2 = evaluate_circuit_cached(prim, _circuit(prim), cache)
    assert sims2 == 0 and key2 == key and values2 == values


def test_non_finite_values_never_stored():
    cache = EvalCache()
    cache.put("k", {"gm": float("nan"), "area": 1.0}, 3)
    cache.put("k2", {"gm": float("inf")}, 1)
    assert len(cache) == 0
    assert cache.get("k") is None
    assert cache.stats.stored == 0


def test_lru_eviction():
    cache = EvalCache(maxsize=2)
    cache.put("a", {"x": 1.0}, 1)
    cache.put("b", {"x": 2.0}, 1)
    assert cache.get("a") is not None  # refresh "a": now "b" is LRU
    cache.put("c", {"x": 3.0}, 1)
    assert cache.stats.evicted == 1
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert cache.get("c") is not None


# -- disk tier -----------------------------------------------------------


def test_disk_tier_survives_process_boundary(tmp_path):
    first = EvalCache(disk_dir=tmp_path)
    first.put("k", {"gm": 1.5}, 4)
    # A fresh cache (new "process") over the same directory.
    second = EvalCache(disk_dir=tmp_path)
    hit = second.get("k")
    assert hit == {"values": {"gm": 1.5}, "simulations": 4}
    assert second.stats.disk_hits == 1
    # The promotion landed in the memory tier.
    assert len(second) == 1


def test_torn_disk_write_treated_as_miss(tmp_path):
    (tmp_path / "bad.json").write_text("{\"values\": {\"gm\":")
    (tmp_path / "shape.json").write_text(json.dumps({"nope": 1}))
    cache = EvalCache(disk_dir=tmp_path)
    assert cache.get("bad") is None
    assert cache.get("shape") is None
    assert cache.stats.hits == 0


# -- disk-tier durability ------------------------------------------------


def test_disk_dir_created_once_in_init(tmp_path):
    target = tmp_path / "nested" / "evalcache"
    cache = EvalCache(disk_dir=target)
    assert target.is_dir()  # created eagerly, not on every put
    cache.put("k", {"gm": 1.0}, 1)
    assert (target / "k.json").exists()


def test_entries_are_checksummed_and_corruption_quarantined(tmp_path):
    first = EvalCache(disk_dir=tmp_path)
    first.put("k", {"gm": 1.5, "area": 2.0}, 4)
    entry = tmp_path / "k.json"
    raw = bytearray(entry.read_bytes())
    raw[raw.index(b"1.5") + 1] = ord("7")  # bit-flip a metric value
    entry.write_bytes(bytes(raw))

    second = EvalCache(disk_dir=tmp_path)
    # __contains__ must not report what the checksum pass would reject.
    assert "k" not in second
    assert second.get("k") is None
    assert second.stats.corrupt == 1
    assert not entry.exists()  # moved aside, not served and not left
    assert (tmp_path / "quarantine" / "k.json").exists()


def test_stats_lookup_invariant_counts_corrupt_once(tmp_path):
    writer = EvalCache(disk_dir=tmp_path)
    writer.put("good", {"gm": 1.5}, 1)
    writer.put("bad", {"gm": 2.0}, 1)
    entry = tmp_path / "bad.json"
    raw = bytearray(entry.read_bytes())
    raw[raw.index(b"2.0") + 1] = ord("9")  # bit-flip a metric value
    entry.write_bytes(bytes(raw))

    cache = EvalCache(disk_dir=tmp_path)
    assert cache.get("absent") is None  # plain miss
    assert cache.get("good") is not None  # disk hit (promotes)
    assert cache.get("good") is not None  # memory hit
    assert cache.get("bad") is None  # corrupt: quarantined, ONE miss
    stats = cache.stats
    assert stats.lookups == 4
    assert stats.hits == 2
    assert stats.misses == 2
    assert stats.corrupt == 1
    assert stats.hits + stats.misses == stats.lookups
    # A containment peek is not a lookup and takes no statistics.
    assert "good" in cache
    assert stats.lookups == 4
    assert stats.hits + stats.misses == stats.lookups


def test_pre_checksum_entries_are_quarantined(tmp_path):
    # Entries from the pre-checksum format carry no checksum field.
    (tmp_path / "old.json").write_text(
        json.dumps({"values": {"gm": 1.0}, "simulations": 2})
    )
    cache = EvalCache(disk_dir=tmp_path)
    assert cache.get("old") is None
    assert cache.stats.corrupt == 1


def test_concurrent_writers_use_distinct_tmp_names(tmp_path):
    a = EvalCache(disk_dir=tmp_path)
    b = EvalCache(disk_dir=tmp_path)
    a.put("k", {"gm": 1.0}, 1)
    b.put("k", {"gm": 1.0}, 1)
    b.put("j", {"gm": 2.0}, 1)
    assert not list(tmp_path.glob("*.tmp"))  # no leftovers either way
    fresh = EvalCache(disk_dir=tmp_path)
    assert fresh.get("k") is not None
    assert fresh.get("j") is not None
    assert fresh.stats.corrupt == 0


def test_unwritable_disk_dir_downgrades_to_memory_only(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("")  # a *file* where the cache dir should go
    cache = EvalCache(disk_dir=blocker / "sub")
    assert cache.disk_dir is None
    assert cache.downgrade_reason is not None
    assert "memory-only" in cache.downgrade_reason
    # The memory tier still works.
    cache.put("k", {"gm": 1.0}, 1)
    assert cache.get("k") is not None


def test_write_failure_downgrades_to_memory_only(tmp_path, monkeypatch):
    import errno
    from pathlib import Path

    cache = EvalCache(disk_dir=tmp_path)
    real = Path.write_text

    def enospc(self, *args, **kwargs):
        if str(self).startswith(str(tmp_path)):
            raise OSError(errno.ENOSPC, "No space left on device")
        return real(self, *args, **kwargs)

    monkeypatch.setattr(Path, "write_text", enospc)
    cache.put("k", {"gm": 1.0}, 1)  # must absorb, not raise
    assert cache.disk_dir is None
    assert "No space left" in cache.downgrade_reason
    assert cache.get("k") is not None  # memory tier unaffected
    cache.put("j", {"gm": 2.0}, 1)  # further puts stay memory-only


def test_disk_size_cap_evicts_stalest_entries(tmp_path):
    import time as _time

    cache = EvalCache(disk_dir=tmp_path, max_disk_bytes=600)
    for i in range(8):
        cache.put(f"k{i}", {"gm": float(i), "pad": 1.0}, 1)
        _time.sleep(0.01)  # distinct mtimes -> deterministic LRU order
    total = sum(p.stat().st_size for p in tmp_path.glob("*.json"))
    assert total <= 600
    assert cache.stats.disk_evicted > 0
    # The newest entries survive; the stalest were deleted.
    assert (tmp_path / "k7.json").exists()
    assert not (tmp_path / "k0.json").exists()


# -- end-to-end through the optimizer ------------------------------------


def test_shared_cache_collapses_repeat_optimizations():
    from repro.primitives import DifferentialPair

    def fresh():
        return DifferentialPair(Technology.default(), base_fins=8, name="ec_opt")

    def optimizer(cache):
        return PrimitiveOptimizer(n_bins=2, max_wires=3, jobs=1, cache=cache)

    baseline = optimizer(cache=False).optimize(fresh())
    cache = EvalCache()
    first = optimizer(cache).optimize(fresh())
    second = optimizer(cache).optimize(fresh())

    # Caching never changes results, only the simulation bill.
    assert first.best.cost == baseline.best.cost
    assert second.best.cost == baseline.best.cost
    # Within one run the tuning sweep re-builds the untuned selection
    # point, so even the first cached run saves simulations ...
    assert first.total_simulations < baseline.total_simulations
    # ... and a repeat run over a warm cache simulates nothing.
    assert second.total_simulations == 0
    assert second.cache_stats["hits"] > 0
