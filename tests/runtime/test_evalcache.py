"""Content-addressed evaluation cache.

ISSUE acceptance: evaluating the same circuit content twice hits the
cache (0 simulations), while any sizing (nfin/nf/m), pattern or wire
change produces a different content key and misses.
"""

from __future__ import annotations

import json

import pytest

from repro import PrimitiveOptimizer, Technology
from repro.cellgen.generator import WireConfig
from repro.devices.mosfet import MosGeometry
from repro.runtime import EvalCache, analysis_signature, evaluate_circuit_cached
from repro.runtime.faults import FaultSpec, inject


@pytest.fixture(scope="module")
def prim():
    from repro.primitives import DifferentialPair

    return DifferentialPair(Technology.default(), base_fins=8, name="ec_dp")


def _circuit(prim, geom=MosGeometry(8, 4, 3), pattern="ABAB", wires=None):
    wires = wires or WireConfig()
    layout = prim.generate(geom, pattern, wires, verify=False)
    return prim.extract(layout, geom).build_circuit()


# -- key stability -------------------------------------------------------


def test_same_content_same_key(prim):
    cache = EvalCache()
    # Two independent generate/extract passes over identical inputs.
    a = cache.key_for(prim, _circuit(prim))
    b = cache.key_for(prim, _circuit(prim))
    assert a == b


def test_any_sizing_change_changes_key(prim):
    cache = EvalCache()
    base = cache.key_for(prim, _circuit(prim, MosGeometry(8, 4, 3)))
    variants = [
        _circuit(prim, MosGeometry(4, 4, 3)),  # nfin
        _circuit(prim, MosGeometry(8, 2, 3)),  # nf
        _circuit(prim, MosGeometry(8, 4, 1)),  # m
        _circuit(prim, pattern="AABB"),  # pattern
        _circuit(prim, wires=WireConfig().with_straps("tail", 2)),  # wires
    ]
    keys = [cache.key_for(prim, c) for c in variants]
    assert base not in keys
    assert len(set(keys)) == len(keys)


def test_instance_name_excluded_from_key(prim):
    from repro.primitives import DifferentialPair

    other = DifferentialPair(Technology.default(), base_fins=8, name="ec_dp2")
    assert analysis_signature(prim) == analysis_signature(other)
    cache = EvalCache()
    assert cache.key_for(prim, _circuit(prim)) == cache.key_for(
        other, _circuit(other)
    )


def test_weight_override_changes_key(prim):
    cache = EvalCache()
    circuit = _circuit(prim)
    plain = cache.key_for(prim, circuit)
    weighted = cache.key_for(prim, circuit, weight_override={"gm": 2.0})
    assert plain != weighted


# -- hit/miss semantics --------------------------------------------------


def test_repeat_evaluation_hits_and_skips_simulation(prim):
    cache = EvalCache()
    values1, sims1, key1 = evaluate_circuit_cached(prim, _circuit(prim), cache)
    assert sims1 > 0
    values2, sims2, key2 = evaluate_circuit_cached(prim, _circuit(prim), cache)
    assert sims2 == 0
    assert key1 == key2
    assert values2 == values1
    assert cache.stats.hits == 1
    assert cache.stats.stored == 1


def test_fault_injector_bypasses_cache(prim):
    cache = EvalCache()
    # Even an all-zero-rate injector bypasses: injected faults key on
    # evaluation keys, so content hits would change which faults fire.
    with inject(FaultSpec()):
        values, sims, key = evaluate_circuit_cached(prim, _circuit(prim), cache)
    assert sims > 0
    assert key is None
    assert len(cache) == 0
    assert cache.stats.stored == 0


def test_non_finite_values_never_stored():
    cache = EvalCache()
    cache.put("k", {"gm": float("nan"), "area": 1.0}, 3)
    cache.put("k2", {"gm": float("inf")}, 1)
    assert len(cache) == 0
    assert cache.get("k") is None
    assert cache.stats.stored == 0


def test_lru_eviction():
    cache = EvalCache(maxsize=2)
    cache.put("a", {"x": 1.0}, 1)
    cache.put("b", {"x": 2.0}, 1)
    assert cache.get("a") is not None  # refresh "a": now "b" is LRU
    cache.put("c", {"x": 3.0}, 1)
    assert cache.stats.evicted == 1
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert cache.get("c") is not None


# -- disk tier -----------------------------------------------------------


def test_disk_tier_survives_process_boundary(tmp_path):
    first = EvalCache(disk_dir=tmp_path)
    first.put("k", {"gm": 1.5}, 4)
    # A fresh cache (new "process") over the same directory.
    second = EvalCache(disk_dir=tmp_path)
    hit = second.get("k")
    assert hit == {"values": {"gm": 1.5}, "simulations": 4}
    assert second.stats.disk_hits == 1
    # The promotion landed in the memory tier.
    assert len(second) == 1


def test_torn_disk_write_treated_as_miss(tmp_path):
    (tmp_path / "bad.json").write_text("{\"values\": {\"gm\":")
    (tmp_path / "shape.json").write_text(json.dumps({"nope": 1}))
    cache = EvalCache(disk_dir=tmp_path)
    assert cache.get("bad") is None
    assert cache.get("shape") is None
    assert cache.stats.hits == 0


# -- end-to-end through the optimizer ------------------------------------


def test_shared_cache_collapses_repeat_optimizations():
    from repro.primitives import DifferentialPair

    def fresh():
        return DifferentialPair(Technology.default(), base_fins=8, name="ec_opt")

    def optimizer(cache):
        return PrimitiveOptimizer(n_bins=2, max_wires=3, jobs=1, cache=cache)

    baseline = optimizer(cache=False).optimize(fresh())
    cache = EvalCache()
    first = optimizer(cache).optimize(fresh())
    second = optimizer(cache).optimize(fresh())

    # Caching never changes results, only the simulation bill.
    assert first.best.cost == baseline.best.cost
    assert second.best.cost == baseline.best.cost
    # Within one run the tuning sweep re-builds the untuned selection
    # point, so even the first cached run saves simulations ...
    assert first.total_simulations < baseline.total_simulations
    # ... and a repeat run over a warm cache simulates nothing.
    assert second.total_simulations == 0
    assert second.cache_stats["hits"] > 0
