"""Failure taxonomy: codes, classification, and the FailureLog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    EvalTimeoutError,
    LayoutError,
    MeasureError,
    NetlistError,
    OptimizationError,
    ReproError,
    SingularMatrixError,
)
from repro.runtime import (
    BAD_METRIC,
    CONV_DC,
    CONV_TRAN,
    EVAL_TIMEOUT,
    FAILURE_CODES,
    SINGULAR_MNA,
    EvalFailure,
    FailureLog,
    classify_failure,
    is_eval_failure,
)


def test_failure_codes_are_stable():
    assert FAILURE_CODES == (
        "CONV-DC",
        "CONV-TRAN",
        "SINGULAR-MNA",
        "EVAL-TIMEOUT",
        "BAD-METRIC",
        "WORKER-LOST",
    )


@pytest.mark.parametrize(
    "exc,code",
    [
        (ConvergenceError("no dc"), CONV_DC),
        (ConvergenceError("no tran", code=CONV_TRAN), CONV_TRAN),
        (SingularMatrixError("singular"), SINGULAR_MNA),
        (EvalTimeoutError("too slow"), EVAL_TIMEOUT),
        (MeasureError("nan gain"), BAD_METRIC),
        (np.linalg.LinAlgError("singular matrix"), SINGULAR_MNA),
        (ZeroDivisionError("x/0"), BAD_METRIC),
        (ValueError("math domain error"), BAD_METRIC),
    ],
)
def test_classify_failure(exc, code):
    assert classify_failure(exc) == code


def test_classify_rejects_non_failures():
    with pytest.raises(TypeError):
        classify_failure(KeyError("missing"))


@pytest.mark.parametrize(
    "exc,absorbable",
    [
        (ConvergenceError("x"), True),
        (SingularMatrixError("x"), True),
        (EvalTimeoutError("x"), True),
        (MeasureError("x"), True),
        (np.linalg.LinAlgError("x"), True),
        (ZeroDivisionError("x"), True),
        (FloatingPointError("x"), True),
        # Configuration/programming bugs must keep propagating.
        (NetlistError("x"), False),
        (LayoutError("x"), False),
        (OptimizationError("x"), False),
        (ReproError("x"), False),
        (KeyError("x"), False),
        (TypeError("x"), False),
    ],
)
def test_is_eval_failure(exc, absorbable):
    assert is_eval_failure(exc) is absorbable


def test_eval_failure_round_trip():
    failure = EvalFailure(
        code=CONV_DC,
        stage="selection",
        key="sel:8x1x1:ABBA:-",
        message="no convergence",
        attempt=1,
        injected=True,
    )
    assert EvalFailure.from_dict(failure.to_dict()) == failure


def test_failure_log_counting_and_summary():
    log = FailureLog()
    assert not log
    assert log.summary() == "no failures"
    log.record(EvalFailure(CONV_DC, "selection", "a"))
    log.record(EvalFailure(CONV_DC, "tuning", "b"))
    log.record(EvalFailure(BAD_METRIC, "selection", "a"))
    assert len(log) == 3
    assert log.count() == 3
    assert log.count(code=CONV_DC) == 2
    assert log.count(code=CONV_DC, stage="selection") == 1
    assert log.by_code() == {CONV_DC: 2, BAD_METRIC: 1}
    assert log.failed_keys() == {"a", "b"}
    assert log.failed_keys(stage="tuning") == {"b"}
    assert "CONV-DC=2" in log.summary()
    assert "BAD-METRIC=1" in log.summary()


def test_failure_log_extend_and_degraded():
    log = FailureLog()
    other = FailureLog()
    other.record(EvalFailure(CONV_TRAN, "tuning", "k"))
    other.mark_degraded("tuning")
    log.extend(other)
    log.extend(other)  # degraded stages stay deduplicated
    assert log.count(code=CONV_TRAN) == 2
    assert log.degraded_stages == ["tuning"]
    assert "degraded stages: tuning" in log.summary()


def test_failure_log_round_trip():
    log = FailureLog()
    log.record(EvalFailure(SINGULAR_MNA, "selection", "k", attempt=2))
    log.mark_degraded("selection")
    restored = FailureLog.from_dict(log.to_dict())
    assert restored.failures == log.failures
    assert restored.degraded_stages == log.degraded_stages
