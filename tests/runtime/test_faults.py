"""Fault injection: every failure code's degradation path, end to end.

The injector is keyed-deterministic, so each test pins a seed and the
assertions are exact — ``make faults`` re-runs the whole module under the
``REPRO_FAULT_SEEDS`` matrix via the ``fault_seed`` fixture.
"""

from __future__ import annotations

import pytest

from repro import PrimitiveLibrary, PrimitiveOptimizer, Technology
from repro.core.tuning import tune_option
from repro.errors import OptimizationError
from repro.primitives.base import MosPrimitive
from repro.runtime import (
    BAD_METRIC,
    CONV_DC,
    CONV_TRAN,
    EVAL_TIMEOUT,
    SINGULAR_MNA,
    EvalRuntime,
    RetryPolicy,
)
from repro.runtime.faults import FaultSpec, inject


def _optimize(primitive, policy=None, **kwargs):
    optimizer = PrimitiveOptimizer(
        n_bins=1,
        max_wires=2,
        policy=policy or RetryPolicy(max_retries=2),
    )
    return optimizer.optimize(primitive, **kwargs)


def test_no_injector_means_no_failures(small_primitive):
    report = _optimize(small_primitive, tune=False)
    assert report.options
    assert not report.failures


def test_conv_dc_absorbed_with_exact_accounting(small_primitive, fault_seed):
    with inject(FaultSpec(dc_fail_rate=0.4), seed=fault_seed) as injector:
        report = _optimize(small_primitive, tune=False)
    assert report.options
    assert len(report.failures) == sum(injector.counters.values())
    assert report.failures.count(code=CONV_DC) == injector.counters.get(
        CONV_DC, 0
    )
    assert all(f.injected for f in report.failures.failures)


def test_singular_mna_absorbed(small_primitive, fault_seed):
    with inject(FaultSpec(singular_rate=0.4), seed=fault_seed) as injector:
        report = _optimize(small_primitive, tune=False)
    assert report.options
    assert report.failures.count(code=SINGULAR_MNA) == injector.counters.get(
        SINGULAR_MNA, 0
    )


def test_conv_tran_absorbed(fault_seed):
    # The digital delay primitives are the transient users in the library.
    primitive = PrimitiveLibrary().create(
        "current_starved_inverter", Technology.default(), base_fins=8
    )
    with inject(FaultSpec(tran_fail_rate=0.5), seed=fault_seed) as injector:
        report = _optimize(primitive, tune=False)
    assert report.options
    assert report.failures.count(code=CONV_TRAN) == injector.counters.get(
        CONV_TRAN, 0
    )


def test_bad_metric_poisoning_absorbed(small_primitive, fault_seed):
    with inject(FaultSpec(bad_metric_rate=0.4), seed=fault_seed) as injector:
        report = _optimize(small_primitive, tune=False)
    assert report.options
    assert report.failures.count(code=BAD_METRIC) == injector.counters.get(
        BAD_METRIC, 0
    )
    # Poisoned options can never win: every surviving option is finite.
    assert all(o.cost == o.cost for o in report.options)


def test_retry_recovers_every_evaluation(small_primitive):
    # Every evaluation fails on attempt 0 and recovers on the retry: the
    # report is complete and the log shows one failure per evaluation.
    spec = FaultSpec(dc_fail_rate=1.0, recover_on_retry=True)
    with inject(spec, seed=0) as injector:
        report = _optimize(small_primitive, tune=False)
    assert report.options
    assert injector.counters[CONV_DC] == len(report.failures)
    assert all(f.attempt == 0 for f in report.failures.failures)
    assert report.failures.count(code=CONV_DC) > 0


def test_total_failure_raises_with_failure_log(small_primitive):
    # Deadline shorter than the injected slowdown on every evaluation:
    # nothing survives selection and the flow-level raise carries the log.
    policy = RetryPolicy(max_retries=1, deadline_s=1.0)
    spec = FaultSpec(slow_eval_rate=1.0, slow_eval_seconds=60.0)
    with inject(spec, seed=0):
        with pytest.raises(OptimizationError) as excinfo:
            _optimize(small_primitive, policy=policy, tune=False)
    assert excinfo.value.failures is not None
    assert excinfo.value.failures.count(code=EVAL_TIMEOUT) > 0
    assert EVAL_TIMEOUT in str(excinfo.value)


def test_failed_tuning_keeps_untuned_option(small_primitive):
    # Tune with total injection: every tuning point fails, the terminal
    # sweeps degrade, and the selected (untuned) option survives.
    report = _optimize(small_primitive, tune=False)
    option = report.selected[0]
    runtime = EvalRuntime(policy=RetryPolicy(max_retries=0))
    with inject(FaultSpec(dc_fail_rate=1.0), seed=0):
        result = tune_option(
            small_primitive, option, max_wires=2, runtime=runtime
        )
    assert result.option is option
    assert all(s.stopped_by == "failed" for s in result.sweeps)
    assert runtime.failures.count(code=CONV_DC) > 0


def test_degraded_stage_is_reported(small_primitive):
    policy = RetryPolicy(max_retries=0, stage_failure_ceiling=0.05)
    with inject(FaultSpec(dc_fail_rate=0.4), seed=1):
        report = _optimize(small_primitive, policy=policy, tune=False)
    assert report.options
    assert "selection" in report.failures.degraded_stages
    assert "degraded" in report.failures.summary()


def test_acceptance_whole_library_under_30pct_dc_faults(fault_seed):
    """ISSUE acceptance: 30% DC-fault injection over every library
    primitive yields non-empty reports whose FailureLog accounts for
    exactly the injected failures."""
    tech = Technology.default()
    library = PrimitiveLibrary()
    checked = 0
    for name in library.names():
        try:
            primitive = library.create(name, tech, base_fins=8)
        except TypeError:
            continue  # passives take different constructor args
        if not isinstance(primitive, MosPrimitive):
            continue
        with inject(FaultSpec(dc_fail_rate=0.3), seed=fault_seed) as injector:
            report = _optimize(primitive, tune=False)
        assert report.options, f"{name}: no surviving options"
        assert len(report.failures) == sum(injector.counters.values()), (
            f"{name}: log does not match injector "
            f"({report.failures.summary()} vs {injector.counters})"
        )
        for code, count in injector.counters.items():
            assert report.failures.count(code=code) == count, name
        checked += 1
    assert checked >= 20  # the library's full MOS-primitive set
