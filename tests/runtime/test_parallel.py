"""Process-pool parallel evaluation engine.

ISSUE acceptance: a run with ``--jobs N`` produces byte-identical
reports, journals and failure logs to ``--jobs 1`` — with and without
fault injection — and speculative work never consumed leaves no trace.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro import PrimitiveOptimizer, Technology
from repro.errors import LayoutError
from repro.runtime import (
    BatchTask,
    ParallelEvalRuntime,
    RetryPolicy,
    resolve_jobs,
)
from repro.runtime import parallel
from repro.runtime.faults import FaultSpec, inject
from repro.runtime.parallel import ParallelBatch

JOBS = 4


def _fresh_dp():
    from repro.primitives import DifferentialPair

    return DifferentialPair(Technology.default(), base_fins=8, name="par_dp")


def _optimizer(jobs, cache=True, run_dir=None, resume=False):
    return PrimitiveOptimizer(
        n_bins=2,
        max_wires=3,
        policy=RetryPolicy(max_retries=2),
        jobs=jobs,
        cache=cache,
        run_dir=run_dir,
        resume=resume,
    )


def _fingerprint(report) -> tuple:
    return (
        [(o.describe(), o.cost) for o in report.options],
        [(o.describe(), o.cost) for o in report.selected],
        [(t.option.describe(), t.option.cost) for t in report.tuned],
        [(s.name, s.simulations) for s in report.stages],
        report.total_simulations,
        report.best.cost,
        [f.to_dict() for f in report.failures.failures],
        report.cache_stats,
    )


# -- resolve_jobs --------------------------------------------------------


def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(None, default=6) == 6
    assert resolve_jobs(3, default=6) == 3
    assert resolve_jobs(0) == 1  # clamped
    assert resolve_jobs(-2) == 1
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5
    assert resolve_jobs(None, default=2) == 5  # env beats default
    assert resolve_jobs(2) == 2  # explicit beats env
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert resolve_jobs(None, default=4) == 1  # env 0 clamps to serial
    monkeypatch.setenv("REPRO_JOBS", "-3")
    assert resolve_jobs(None, default=4) == 1


def test_resolve_jobs_warns_once_on_garbage_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    monkeypatch.setattr(parallel, "_warned_bad_jobs_env", False)
    with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
        assert resolve_jobs(None, default=2) == 2
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second call must stay silent
        assert resolve_jobs(None, default=3) == 3


# -- determinism: jobs=N == jobs=1 ---------------------------------------


def test_parallel_report_identical_without_cache():
    serial = _optimizer(jobs=1, cache=False).optimize(_fresh_dp())
    parallel = _optimizer(jobs=JOBS, cache=False).optimize(_fresh_dp())
    assert _fingerprint(parallel) == _fingerprint(serial)


def test_parallel_report_identical_with_cache():
    serial = _optimizer(jobs=1).optimize(_fresh_dp())
    parallel = _optimizer(jobs=JOBS).optimize(_fresh_dp())
    # Including simulation accounting and cache stats: the parent
    # reconciles worker payloads against its cache in consumption order,
    # so hits land on the same evaluations a serial run hits.
    assert _fingerprint(parallel) == _fingerprint(serial)


def test_parallel_report_identical_under_faults(fault_seed):
    spec = FaultSpec(dc_fail_rate=0.3)
    with inject(spec, seed=fault_seed) as serial_injector:
        serial = _optimizer(jobs=1).optimize(_fresh_dp())
    with inject(spec, seed=fault_seed) as parallel_injector:
        parallel = _optimizer(jobs=JOBS).optimize(_fresh_dp())
    assert _fingerprint(parallel) == _fingerprint(serial)
    # The keyed injector fires identically: same counters, same (kind,
    # key) sequence — worker clones report their events and the parent
    # merges exactly the consumed attempts.
    assert parallel_injector.counters == serial_injector.counters
    assert parallel_injector.fired == serial_injector.fired


def test_parallel_journal_byte_identical(tmp_path):
    _optimizer(jobs=1, run_dir=tmp_path / "serial").optimize(_fresh_dp())
    _optimizer(jobs=JOBS, run_dir=tmp_path / "parallel").optimize(_fresh_dp())
    serial = (tmp_path / "serial" / "par_dp.jsonl").read_bytes()
    parallel = (tmp_path / "parallel" / "par_dp.jsonl").read_bytes()
    assert parallel == serial


def test_parallel_resume_after_kill_is_identical(tmp_path):
    baseline = _optimizer(jobs=JOBS, run_dir=tmp_path / "full").optimize(
        _fresh_dp()
    )
    _optimizer(jobs=JOBS, run_dir=tmp_path / "run").optimize(_fresh_dp())

    # "Kill" the run halfway: truncate the journal, and prune the disk
    # cache tier to the content the kept journal entries produced (in a
    # real crash both are written at the same consumption step, so the
    # disk tier never runs ahead of the journal).
    journal = tmp_path / "run" / "par_dp.jsonl"
    lines = journal.read_text().splitlines(keepends=True)
    kept = lines[: len(lines) // 2]
    journal.write_text("".join(kept))
    kept_keys = set()
    for line in kept:
        payload = json.loads(line).get("payload") or {}
        if isinstance(payload, dict) and payload.get("cache_key"):
            kept_keys.add(payload["cache_key"])
    for entry in (tmp_path / "run" / "evalcache").glob("*.json"):
        if entry.stem not in kept_keys:
            entry.unlink()

    resumed = _optimizer(
        jobs=JOBS, run_dir=tmp_path / "run", resume=True
    ).optimize(_fresh_dp())
    assert _fingerprint(resumed) == _fingerprint(baseline)
    assert resumed.cached_evaluations == len(kept)


# -- batch semantics -----------------------------------------------------


def test_unconsumed_speculation_leaves_no_trace():
    runtime = ParallelEvalRuntime(jobs=2)
    log = []
    tasks = [
        BatchTask(key=f"k{i}", thunk=lambda i=i: log.append(i) or i * 10)
        for i in range(4)
    ]
    batch = runtime.evaluate_batch(tasks, stage="spec")
    assert isinstance(batch, ParallelBatch)
    assert batch.consume(0) == 0
    assert batch.consume(1) == 10
    # Workers speculated through the whole batch, but only consumed
    # tasks are accounted; the parent-side ``log`` never ran at all
    # (evaluation happened in forked children).
    assert runtime._stage_total["spec"] == 2
    assert not runtime.failures
    assert not log


def test_absorbed_exception_reraised_at_consume():
    runtime = ParallelEvalRuntime(jobs=2)

    def boom():
        raise LayoutError("infeasible pattern")

    tasks = [
        BatchTask(key="ok", thunk=lambda: 1),
        BatchTask(key="bad", thunk=boom, absorb=(LayoutError,)),
        BatchTask(key="ok2", thunk=lambda: 2),
    ]
    batch = runtime.evaluate_batch(tasks, stage="spec")
    assert batch.consume(0) == 1
    with pytest.raises(LayoutError, match="infeasible"):
        batch.consume(1)
    assert batch.consume(2) == 2
    # An absorbed exception is the call site's business, not a recorded
    # evaluation failure.
    assert not runtime.failures


def test_small_batches_stay_serial():
    runtime = ParallelEvalRuntime(jobs=4)
    batch = runtime.evaluate_batch(
        [BatchTask(key="only", thunk=lambda: 7)], stage="s"
    )
    assert not isinstance(batch, ParallelBatch)
    assert batch.consume(0) == 7
