"""EvalRuntime retry/deadline/budget behaviour (no real simulation)."""

from __future__ import annotations

import pytest

from repro.errors import ConvergenceError, NetlistError
from repro.runtime import (
    BAD_METRIC,
    CONV_DC,
    EVAL_TIMEOUT,
    EvalRuntime,
    RetryPolicy,
    SweepJournal,
)
from repro.runtime import context


class FakeClock:
    """Deterministic monotonic clock advancing a fixed step per call."""

    def __init__(self, step: float = 0.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def test_success_passes_through():
    runtime = EvalRuntime()
    assert runtime.evaluate("k", lambda: 41 + 1, stage="s") == 42
    assert not runtime.failures


def test_retry_recovers_with_perturbed_context():
    attempts = []

    def flaky():
        ctx = context.current()
        attempts.append((ctx.attempt, ctx.perturbation))
        if ctx.attempt == 0:
            raise ConvergenceError("first attempt fails")
        return "ok"

    runtime = EvalRuntime(policy=RetryPolicy(max_retries=1))
    assert runtime.evaluate("k", flaky, stage="s") == "ok"
    assert attempts == [(0, 0.0), (1, pytest.approx(1e-3))]
    # The failed attempt is still accounted for.
    assert runtime.failures.count(code=CONV_DC) == 1
    assert runtime.stage_failure_fraction("s") == 0.0  # eval succeeded


def test_exhausted_budget_absorbs_and_returns_none():
    runtime = EvalRuntime(policy=RetryPolicy(max_retries=2))
    calls = []
    result = runtime.evaluate(
        "k",
        lambda: calls.append(1) or (_ for _ in ()).throw(ConvergenceError("x")),
        stage="s",
    )
    assert result is None
    assert len(calls) == 3  # 1 + 2 retries
    assert runtime.failures.count(code=CONV_DC) == 3
    assert runtime.stage_failure_fraction("s") == 1.0


def test_non_eval_failures_propagate():
    runtime = EvalRuntime()
    with pytest.raises(NetlistError):
        runtime.evaluate(
            "k",
            lambda: (_ for _ in ()).throw(NetlistError("bug")),
            stage="s",
        )
    assert not runtime.failures


def test_deadline_times_out():
    clock = FakeClock(step=10.0)  # every eval appears to take 10 s
    runtime = EvalRuntime(
        policy=RetryPolicy(max_retries=1, deadline_s=5.0), clock=clock
    )
    assert runtime.evaluate("k", lambda: "slow", stage="s") is None
    assert runtime.failures.count(code=EVAL_TIMEOUT) == 2


def test_validate_rejects_as_bad_metric():
    runtime = EvalRuntime(policy=RetryPolicy(max_retries=0))
    result = runtime.evaluate(
        "k",
        lambda: float("nan"),
        stage="s",
        validate=lambda r: "nan result" if r != r else None,
    )
    assert result is None
    assert runtime.failures.count(code=BAD_METRIC) == 1


def test_stage_ceiling_marks_degraded_and_stops_retries():
    runtime = EvalRuntime(
        policy=RetryPolicy(max_retries=3, stage_failure_ceiling=0.4)
    )
    calls = []

    def failing():
        calls.append(1)
        raise ConvergenceError("x")

    # First failed eval: 1/1 failed > 0.4 -> stage degraded.
    assert runtime.evaluate("k1", failing, stage="s") is None
    assert len(calls) == 4  # full retry budget spent
    assert runtime.stage_degraded("s")
    # Degraded stage: no retries, single attempt only.
    calls.clear()
    assert runtime.evaluate("k2", failing, stage="s") is None
    assert len(calls) == 1


def test_per_call_retry_override():
    runtime = EvalRuntime(policy=RetryPolicy(max_retries=0))
    calls = []

    def failing():
        calls.append(1)
        raise ConvergenceError("x")

    assert runtime.evaluate("k", failing, stage="s", retries=4) is None
    assert len(calls) == 5


def test_journal_hit_skips_thunk(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    runtime = EvalRuntime(journal=journal)
    assert runtime.evaluate("k", lambda: {"v": 7}, stage="s") == {"v": 7}
    journal.close()

    resumed = SweepJournal(tmp_path / "j.jsonl", resume=True)
    runtime2 = EvalRuntime(journal=resumed)
    called = []
    result = runtime2.evaluate(
        "k",
        lambda: called.append(1) or {"v": 0},
        stage="s",
        from_payload=lambda p: {"v": p["v"] * 10},
    )
    assert result == {"v": 70}
    assert not called
    assert runtime2.cache_hits == 1
    resumed.close()


def test_journaled_failure_replays_into_log(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    runtime = EvalRuntime(policy=RetryPolicy(max_retries=1), journal=journal)
    assert (
        runtime.evaluate(
            "k",
            lambda: (_ for _ in ()).throw(ConvergenceError("x")),
            stage="s",
        )
        is None
    )
    journal.close()
    assert runtime.failures.count(code=CONV_DC) == 2

    resumed = SweepJournal(tmp_path / "j.jsonl", resume=True)
    runtime2 = EvalRuntime(policy=RetryPolicy(max_retries=1), journal=resumed)
    called = []
    assert (
        runtime2.evaluate("k", lambda: called.append(1), stage="s") is None
    )
    assert not called  # failure is final: not re-attempted on resume
    # The resumed log accounts for the whole logical run's failures.
    assert runtime2.failures.count(code=CONV_DC) == 2
    assert runtime2.cache_hits == 1
    resumed.close()


def test_injected_timeout_counts_phantom_time():
    from repro.runtime.faults import FaultSpec, inject

    clock = FakeClock(step=0.001)
    runtime = EvalRuntime(
        policy=RetryPolicy(max_retries=0, deadline_s=1.0), clock=clock
    )
    spec = FaultSpec(slow_eval_rate=1.0, slow_eval_seconds=60.0)
    with inject(spec, seed=0):
        assert runtime.evaluate("k", lambda: "done", stage="s") is None
    assert runtime.failures.count(code=EVAL_TIMEOUT) == 1
