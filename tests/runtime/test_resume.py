"""Checkpoint/resume: a killed sweep resumes without re-simulation.

ISSUE acceptance: killing an optimize run mid-sweep and resuming with
``--resume`` reproduces identical results without re-simulating the
evaluations the journal already holds.
"""

from __future__ import annotations

import pytest

from repro import PrimitiveOptimizer, Technology
from repro.runtime import CONV_DC, RetryPolicy
from repro.runtime.faults import FaultSpec, inject


def _fresh_dp():
    from repro.primitives import DifferentialPair

    return DifferentialPair(Technology.default(), base_fins=8, name="rs_dp")


def _count_evaluations(primitive) -> list:
    """Instrument ``primitive.evaluate`` to count real simulations."""
    calls: list = []
    original = primitive.evaluate

    def counting(dut):
        calls.append(dut.name)
        return original(dut)

    primitive.evaluate = counting
    return calls


def _report_fingerprint(report) -> tuple:
    return (
        [(o.describe(), o.cost) for o in report.options],
        [(o.describe(), o.cost) for o in report.selected],
        [(t.option.describe(), t.option.cost) for t in report.tuned],
        report.total_simulations,
        report.best.cost,
        [f.to_dict() for f in report.failures.failures],
    )


def _optimizer(run_dir, resume=False):
    # jobs=1/cache=False/batch=1 keep this file about pure journal
    # mechanics: the ``_count_evaluations`` instrumentation counts
    # in-process serial simulator calls, which worker processes,
    # content-cache hits and the batched fast path (whose members run
    # through ``batch_evaluate`` hooks, not ``primitive.evaluate``)
    # would legitimately elide (see test_parallel.py /
    # test_evalcache.py / test_batched.py for the jobs-, cache- and
    # batch-aware resume guarantees).
    return PrimitiveOptimizer(
        n_bins=2,
        max_wires=3,
        policy=RetryPolicy(max_retries=2),
        run_dir=run_dir,
        resume=resume,
        jobs=1,
        cache=False,
        batch=1,
    )


def test_resume_after_kill_is_identical_and_skips_sims(tmp_path):
    # Uninterrupted run: the ground truth.
    baseline = _optimizer(tmp_path / "full").optimize(_fresh_dp())

    # The same run, checkpointed.
    first = _optimizer(tmp_path / "run").optimize(_fresh_dp())
    assert _report_fingerprint(first) == _report_fingerprint(baseline)

    # "Kill" the sweep mid-way: keep only the first half of the journal,
    # as if the process died after journaling half its evaluations.
    journal = tmp_path / "run" / "rs_dp.jsonl"
    lines = journal.read_text().splitlines(keepends=True)
    assert len(lines) > 4
    kept = len(lines) // 2
    journal.write_text("".join(lines[:kept]))

    resumed_primitive = _fresh_dp()
    calls = _count_evaluations(resumed_primitive)
    resumed = _optimizer(tmp_path / "run", resume=True).optimize(
        resumed_primitive
    )

    # Identical results...
    assert _report_fingerprint(resumed) == _report_fingerprint(baseline)
    assert resumed.cached_evaluations == kept
    # ...without re-simulating the journaled half.  The resumed run only
    # simulates what the journal lost (plus nothing else: total journal
    # entries == journaled + re-run evaluations).
    assert len(calls) == len(lines) - kept


def test_full_journal_resume_needs_zero_simulations(tmp_path):
    first = _optimizer(tmp_path).optimize(_fresh_dp())

    primitive = _fresh_dp()
    calls = _count_evaluations(primitive)
    resumed = _optimizer(tmp_path, resume=True).optimize(primitive)
    assert not calls
    assert resumed.cached_evaluations > 0
    assert _report_fingerprint(resumed) == _report_fingerprint(first)


def test_resume_under_fault_injection_is_identical(tmp_path, fault_seed):
    # Keyed injection makes the fault pattern a pure function of
    # (seed, key, attempt), so an interrupted+resumed run must reproduce
    # the uninterrupted run bit-for-bit — including its failure log.
    spec = FaultSpec(dc_fail_rate=0.3)
    with inject(spec, seed=fault_seed):
        baseline = _optimizer(tmp_path / "full").optimize(_fresh_dp())

    with inject(spec, seed=fault_seed):
        _optimizer(tmp_path / "run").optimize(_fresh_dp())
    journal = tmp_path / "run" / "rs_dp.jsonl"
    lines = journal.read_text().splitlines(keepends=True)
    journal.write_text("".join(lines[: len(lines) // 2]))

    with inject(spec, seed=fault_seed):
        resumed = _optimizer(tmp_path / "run", resume=True).optimize(
            _fresh_dp()
        )
    assert _report_fingerprint(resumed) == _report_fingerprint(baseline)
    if baseline.failures:
        assert resumed.failures.count(code=CONV_DC) == baseline.failures.count(
            code=CONV_DC
        )


def test_resume_without_journal_runs_fresh(tmp_path):
    primitive = _fresh_dp()
    report = _optimizer(tmp_path, resume=True).optimize(primitive)
    assert report.options
    assert report.cached_evaluations == 0
