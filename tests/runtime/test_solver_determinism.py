"""Solver choice versus the PR-4 determinism contract.

ISSUE acceptance: for a *fixed* solver choice, journals and content-cache
keys are byte-identical across ``--jobs 1`` and ``--jobs 4`` — the
profiling layer and the backend swap must not leak into any journaled or
cached artifact.
"""

from __future__ import annotations

import json

import pytest

from repro import PrimitiveOptimizer, Technology
from repro.runtime import RetryPolicy
from repro.spice import kernel

JOBS = 4


@pytest.fixture(autouse=True)
def _fixed_solver(monkeypatch, request):
    monkeypatch.delenv(kernel.SOLVER_ENV, raising=False)
    kernel.set_default_solver(request.param if hasattr(request, "param") else None)
    yield
    kernel.set_default_solver(None)


def _fresh_dp():
    from repro.primitives import DifferentialPair

    return DifferentialPair(Technology.default(), base_fins=8, name="det_dp")


def _optimize(jobs, run_dir):
    return PrimitiveOptimizer(
        n_bins=2,
        max_wires=3,
        policy=RetryPolicy(max_retries=1),
        jobs=jobs,
        run_dir=run_dir,
    ).optimize(_fresh_dp())


def _cache_keys(journal_path):
    keys = []
    for line in journal_path.read_text().splitlines():
        payload = json.loads(line).get("payload") or {}
        if isinstance(payload, dict) and payload.get("cache_key"):
            keys.append(payload["cache_key"])
    return keys


@pytest.mark.parametrize("solver", ["dense", "sparse"])
def test_journals_byte_identical_across_jobs(tmp_path, solver, monkeypatch):
    monkeypatch.setenv(kernel.SOLVER_ENV, solver)
    serial = _optimize(1, tmp_path / "serial")
    parallel = _optimize(JOBS, tmp_path / "parallel")
    serial_bytes = (tmp_path / "serial" / "det_dp.jsonl").read_bytes()
    parallel_bytes = (tmp_path / "parallel" / "det_dp.jsonl").read_bytes()
    assert parallel_bytes == serial_bytes
    keys_serial = _cache_keys(tmp_path / "serial" / "det_dp.jsonl")
    keys_parallel = _cache_keys(tmp_path / "parallel" / "det_dp.jsonl")
    assert keys_serial and keys_parallel == keys_serial
    # The profile is a report-level view only — never journaled.
    assert b"solver_profile" not in serial_bytes
    assert b"stamp_s" not in serial_bytes
    # jobs=1 runs every evaluation in-process, so its profile is
    # complete; jobs=N offloads to workers whose counters stay there.
    assert serial.solver_profile
    assert serial.solver_profile["backends"] == {
        solver: serial.solver_profile["solves"]
    }


def test_backends_agree_on_selected_options(tmp_path, monkeypatch):
    """Dense and sparse runs pick the same layout options (costs agree
    within the cost function's own tolerance, selection is identical)."""
    monkeypatch.setenv(kernel.SOLVER_ENV, "dense")
    dense = _optimize(1, tmp_path / "dense")
    monkeypatch.setenv(kernel.SOLVER_ENV, "sparse")
    sparse = _optimize(1, tmp_path / "sparse")
    assert [o.describe() for o in sparse.selected] == [
        o.describe() for o in dense.selected
    ]
    assert sparse.best.cost == pytest.approx(dense.best.cost, rel=1e-2)
