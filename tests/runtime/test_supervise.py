"""Worker supervision: heartbeats, watchdog, quarantine, graceful exit.

ISSUE acceptance: a SIGKILLed worker never takes the run down — the pool
is replaced and the task re-dispatched; a task that keeps killing fresh
workers degrades to a recorded failure; a hung task is SIGKILLed by the
watchdog; SIGINT/SIGTERM flush every registered journal/cache and exit
``128 + signum``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.runtime import supervise
from repro.runtime.failures import EVAL_TIMEOUT, WORKER_LOST
from repro.runtime.supervise import (
    DOWNGRADE_POOL_REPLACED,
    DOWNGRADE_SERIAL_FALLBACK,
    DOWNGRADE_WATCHDOG_KILL,
    SupervisedPool,
)

# Fork-inherited by workers (set before each pool starts).
_HB_DIR = None
_KILL_INDEX = None
_KILL_TIMES = 0
_HANG_INDEX = None


def _worker(index: int, dispatch_attempt: int):
    """Picklable test worker: heartbeat, optional chaos, echo result."""
    supervise.heartbeat_start(_HB_DIR, index)
    try:
        if index == _KILL_INDEX and dispatch_attempt < _KILL_TIMES:
            os.kill(os.getpid(), signal.SIGKILL)
        if index == _HANG_INDEX:
            time.sleep(600)
        return index * 10 + dispatch_attempt
    finally:
        supervise.heartbeat_finish(_HB_DIR, index)


def _pool(indices, **kwargs):
    defaults = dict(
        jobs=2,
        mp_context=multiprocessing.get_context("fork"),
        poll_s=0.02,
    )
    defaults.update(kwargs)
    pool = SupervisedPool(
        _worker,
        indices,
        keys={i: f"task-{i}" for i in indices},
        **defaults,
    )
    global _HB_DIR
    _HB_DIR = pool.heartbeat_dir
    return pool


def _chaos(kill_index=None, kill_times=0, hang_index=None):
    global _KILL_INDEX, _KILL_TIMES, _HANG_INDEX
    _KILL_INDEX = kill_index
    _KILL_TIMES = kill_times
    _HANG_INDEX = hang_index


def test_happy_path_returns_all_outcomes():
    _chaos()
    result = _pool([0, 1, 2, 3]).run()
    assert result.outcomes == {0: 0, 1: 10, 2: 20, 3: 30}
    assert not result.lost
    assert not result.serial_fallback
    assert not result.events


def test_killed_worker_is_replaced_and_task_redispatched():
    _chaos(kill_index=1, kill_times=1)
    result = _pool([0, 1, 2]).run()
    # The doomed task recovers on its second dispatch (attempt index 1).
    assert result.outcomes[1] == 11
    assert set(result.outcomes) == {0, 1, 2}
    assert not result.lost
    assert DOWNGRADE_POOL_REPLACED in result.events


def test_poison_task_is_quarantined_not_raised():
    _chaos(kill_index=1, kill_times=99)
    result = _pool([0, 1, 2]).run()
    # The poison task killed two fresh workers -> recorded, never raised.
    assert 1 in result.lost
    assert result.lost[1].code == WORKER_LOST
    assert "task-1" in result.lost[1].message
    # Innocent bystanders all completed.
    assert set(result.outcomes) == {0, 2}
    assert not result.serial_fallback


def test_watchdog_kills_hung_task():
    _chaos(hang_index=1)
    result = _pool([0, 1, 2], task_timeout_s=0.3).run()
    assert 1 in result.lost
    assert result.lost[1].code == EVAL_TIMEOUT
    assert DOWNGRADE_WATCHDOG_KILL in result.events
    assert set(result.outcomes) == {0, 2}


def test_replacement_budget_exhaustion_falls_back_to_serial():
    # Every dispatch of task 1 dies and the budget allows zero rebuilds:
    # the supervisor hands the remainder back for serial execution.
    _chaos(kill_index=1, kill_times=99)
    result = _pool([0, 1, 2], max_pool_replacements=0, max_task_deaths=99).run()
    assert DOWNGRADE_SERIAL_FALLBACK in result.events
    assert 1 in result.serial_fallback
    assert not result.lost


def test_heartbeat_roundtrip(tmp_path):
    assert supervise.read_heartbeat(tmp_path, 7) is None
    supervise.heartbeat_start(tmp_path, 7)
    beat = supervise.read_heartbeat(tmp_path, 7)
    assert beat is not None and beat["pid"] == os.getpid()
    supervise.heartbeat_finish(tmp_path, 7)
    assert supervise.read_heartbeat(tmp_path, 7) is None
    # None hb_dir (serial mode) is a silent no-op.
    supervise.heartbeat_start(None, 7)
    supervise.heartbeat_finish(None, 7)


class _Sink:
    """Flushable stand-in for a journal/cache."""

    def __init__(self):
        self.flushed = 0

    def flush(self):
        self.flushed += 1


def test_graceful_shutdown_flushes_and_exits(tmp_path, capsys):
    sink = _Sink()
    supervise.register_flushable(sink)
    before = signal.getsignal(signal.SIGTERM)
    with pytest.raises(SystemExit) as excinfo:
        with supervise.graceful_shutdown(run_dir=tmp_path):
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(5)  # the handler fires long before this returns
    assert excinfo.value.code == 128 + signal.SIGTERM
    assert sink.flushed == 1
    # Handlers restored on exit; the resume hint names the run dir.
    assert signal.getsignal(signal.SIGTERM) is before
    assert str(tmp_path) in capsys.readouterr().err


def test_flush_all_swallows_failures():
    class Bad:
        def flush(self):
            raise RuntimeError("broken sink")

    bad = Bad()
    good = _Sink()
    supervise.register_flushable(bad)
    supervise.register_flushable(good)
    supervise.flush_all()  # must not raise past a signal handler
    assert good.flushed == 1
