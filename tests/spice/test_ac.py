"""AC analysis against analytically-known responses."""

import numpy as np
import pytest

from repro.devices.mosfet import MosGeometry
from repro.spice import Circuit, CompiledCircuit, ac_analysis, dc_operating_point
from repro.spice import measure


def run_ac(circuit, tech, **kw):
    cc = CompiledCircuit(circuit, tech.rules)
    op = dc_operating_point(cc)
    return ac_analysis(cc, op, **kw)


def test_rc_lowpass_pole(tech):
    c = Circuit("rc")
    c.add_vsource("vin", "in", "0", 0.0, ac_magnitude=1.0)
    c.add_resistor("r1", "in", "out", 1e3)
    c.add_capacitor("c1", "out", "0", 1e-12)
    ac = run_ac(c, tech, f_start=1e3, f_stop=1e12, points_per_decade=20)
    f3db = measure.bandwidth_3db(ac.freqs, ac.v("out"))
    assert f3db == pytest.approx(1.0 / (2 * np.pi * 1e3 * 1e-12), rel=0.02)


def test_rc_highpass(tech):
    c = Circuit("cr")
    c.add_vsource("vin", "in", "0", 0.0, ac_magnitude=1.0)
    c.add_capacitor("c1", "in", "out", 1e-12)
    c.add_resistor("r1", "out", "0", 1e3)
    ac = run_ac(c, tech, f_start=1e3, f_stop=1e12, points_per_decade=10)
    h = np.abs(ac.v("out"))
    assert h[0] < 0.01
    assert h[-1] == pytest.approx(1.0, rel=0.01)


def test_lc_resonance(tech):
    c = Circuit("lc")
    c.add_isource("i1", "0", "t", 0.0, ac_magnitude=1.0)
    c.add_inductor("l1", "t", "0", 1e-9)
    c.add_capacitor("c1", "t", "0", 1e-12)
    # Moderate Q so the discrete sweep cannot miss the peak.
    c.add_resistor("r1", "t", "0", 300.0)
    ac = run_ac(c, tech, f_start=1e8, f_stop=1e11, points_per_decade=80)
    z = np.abs(ac.v("t"))
    f_res = ac.freqs[np.argmax(z)]
    expected = 1.0 / (2 * np.pi * np.sqrt(1e-9 * 1e-12))
    assert f_res == pytest.approx(expected, rel=0.05)
    assert np.max(z) == pytest.approx(300.0, rel=0.1)


def test_common_source_gain_matches_gmro(tech):
    c = Circuit("cs")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    c.add_vsource("vin", "in", "0", 0.45, ac_magnitude=1.0)
    c.add_isource("ibias", "vdd", "out", 150e-6)
    c.add_mosfet("m1", "out", "in", "0", "0", tech.nmos, MosGeometry(8, 8, 1))
    cc = CompiledCircuit(c, tech.rules)
    op = dc_operating_point(cc)
    gm = op.mos("m1")["gm"]
    gds = op.mos("m1")["gds"]
    ac = ac_analysis(cc, op, f_start=1e4, f_stop=1e6, points_per_decade=5)
    gain = measure.low_frequency_gain(ac.v("out"))
    assert gain == pytest.approx(gm / gds, rel=0.02)


def test_vdiff(tech):
    c = Circuit("d")
    c.add_vsource("vin", "a", "0", 0.0, ac_magnitude=1.0)
    c.add_resistor("r1", "a", "b", 1e3)
    c.add_resistor("r2", "b", "0", 1e3)
    ac = run_ac(c, tech, f_start=1e3, f_stop=1e4, points_per_decade=2)
    d = ac.vdiff("a", "b")
    assert abs(d[0]) == pytest.approx(0.5, rel=1e-6)


def test_ground_node_zero(tech):
    c = Circuit("g")
    c.add_vsource("vin", "a", "0", 0.0, ac_magnitude=1.0)
    c.add_resistor("r1", "a", "0", 1e3)
    ac = run_ac(c, tech, f_start=1e3, f_stop=1e4, points_per_decade=2)
    assert np.all(ac.v("0") == 0)


def test_source_current_through_vsource(tech):
    c = Circuit("i")
    c.add_vsource("vin", "a", "0", 0.0, ac_magnitude=1.0)
    c.add_resistor("r1", "a", "0", 1e3)
    ac = run_ac(c, tech, f_start=1e3, f_stop=1e4, points_per_decade=2)
    # |I| = V/R; the branch current flows + -> - internally.
    assert abs(ac.i("vin")[0]) == pytest.approx(1e-3, rel=1e-6)


def test_ac_phase_of_source(tech):
    c = Circuit("p")
    c.add_vsource("vin", "a", "0", 0.0, ac_magnitude=1.0, ac_phase_deg=90.0)
    c.add_resistor("r1", "a", "0", 1e3)
    ac = run_ac(c, tech, f_start=1e3, f_stop=1e4, points_per_decade=2)
    assert np.angle(ac.v("a")[0], deg=True) == pytest.approx(90.0, abs=1e-6)


def test_invalid_sweep_rejected(tech):
    from repro.errors import SimulationError

    c = Circuit("x")
    c.add_vsource("vin", "a", "0", 0.0, ac_magnitude=1.0)
    c.add_resistor("r1", "a", "0", 1e3)
    cc = CompiledCircuit(c, tech.rules)
    op = dc_operating_point(cc)
    with pytest.raises(SimulationError):
        ac_analysis(cc, op, f_start=1e6, f_stop=1e3)
    with pytest.raises(SimulationError):
        ac_analysis(cc, op, points_per_decade=0)
