"""Additional AC scenarios: controlled sources, Miller effect, cascades."""

import numpy as np
import pytest

from repro.devices.mosfet import MosGeometry
from repro.spice import Circuit, CompiledCircuit, ac_analysis, dc_operating_point
from repro.spice import measure


def run_ac(circuit, tech, **kw):
    cc = CompiledCircuit(circuit, tech.rules)
    op = dc_operating_point(cc)
    return op, ac_analysis(cc, op, **kw)


def test_vcvs_ideal_amplifier(tech):
    c = Circuit("e")
    c.add_vsource("vin", "in", "0", 0.0, ac_magnitude=1.0)
    c.add_vcvs("e1", "out", "0", "in", "0", -40.0)
    c.add_resistor("rl", "out", "0", 1e3)
    _, ac = run_ac(c, tech, f_start=1e3, f_stop=1e6, points_per_decade=3)
    assert abs(ac.v("out")[0]) == pytest.approx(40.0, rel=1e-9)


def test_vccs_with_capacitive_load_pole(tech):
    c = Circuit("gmC")
    c.add_vsource("vin", "in", "0", 0.0, ac_magnitude=1.0)
    c.add_vccs("g1", "0", "out", "in", "0", 1e-3)  # gm = 1 mS into out
    c.add_resistor("ro", "out", "0", 100e3)
    c.add_capacitor("cl", "out", "0", 1e-12)
    _, ac = run_ac(c, tech, f_start=1e3, f_stop=1e11, points_per_decade=10)
    h = ac.v("out")
    assert abs(h[0]) == pytest.approx(100.0, rel=0.01)  # gm*ro
    ugf = measure.unity_gain_frequency(ac.freqs, h)
    assert ugf == pytest.approx(1e-3 / (2 * np.pi * 1e-12), rel=0.05)


def test_two_pole_cascade_phase(tech):
    c = Circuit("2p")
    c.add_vsource("vin", "in", "0", 0.0, ac_magnitude=1.0)
    c.add_resistor("r1", "in", "m", 1e3)
    c.add_capacitor("c1", "m", "0", 1e-12)
    # Buffer the first pole with a VCVS, then a second pole.
    c.add_vcvs("e1", "b", "0", "m", "0", 1.0)
    c.add_resistor("r2", "b", "out", 1e3)
    c.add_capacitor("c2", "out", "0", 1e-12)
    _, ac = run_ac(c, tech, f_start=1e6, f_stop=1e12, points_per_decade=20)
    phase = measure.phase_deg(ac.v("out"))
    # Two coincident poles: -90 deg at the pole frequency, -180 at infinity.
    assert phase[-1] == pytest.approx(-180.0, abs=8.0)


def test_miller_multiplication(tech):
    """A bridging capacitor looks gain-multiplied from the input."""
    gm, ro, cbridge = 2e-3, 50e3, 1e-15
    c = Circuit("miller")
    c.add_vsource("vin", "in", "0", 0.0, ac_magnitude=1.0)
    c.add_vccs("g1", "0", "out", "in", "0", gm)
    c.add_resistor("ro", "out", "0", ro)
    c.add_capacitor("cm", "in", "out", cbridge)
    cc = CompiledCircuit(c, tech.rules)
    op = dc_operating_point(cc)
    ac = ac_analysis(cc, op, 1e4, 1e7, 10)
    y_in = -ac.i("vin")
    c_in = float(np.imag(y_in[0])) / (2 * np.pi * float(ac.freqs[0]))
    gain = gm * ro
    assert c_in == pytest.approx((1 + gain) * cbridge, rel=0.05)


def test_mos_capacitances_make_amplifier_roll_off(tech):
    c = Circuit("cs_roll")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    c.add_vsource("vin", "in", "0", 0.36, ac_magnitude=1.0)
    c.add_isource("ib", "vdd", "out", 100e-6)
    c.add_mosfet("m1", "out", "in", "0", "0", tech.nmos, MosGeometry(8, 4, 1))
    cc = CompiledCircuit(c, tech.rules)
    op = dc_operating_point(cc)
    assert op.v("out") > 0.2  # saturated: a real gain stage
    ac = ac_analysis(cc, op, 1e4, 1e12, 8)
    h = np.abs(ac.v("out"))
    assert h[0] > 3.0  # low-frequency gain
    assert h[-1] < h[0] / 2  # device caps roll the gain off
