"""DC operating-point analysis against hand-calculable circuits."""

import numpy as np
import pytest

from repro.devices.mosfet import MosGeometry
from repro.errors import NetlistError
from repro.spice import Circuit, CompiledCircuit, dc_operating_point, dc_sweep


def compiled(circuit, tech):
    return CompiledCircuit(circuit, tech.rules)


def test_voltage_divider(tech):
    c = Circuit("div")
    c.add_vsource("v1", "in", "0", 2.0)
    c.add_resistor("r1", "in", "mid", 1000.0)
    c.add_resistor("r2", "mid", "0", 3000.0)
    op = dc_operating_point(compiled(c, tech))
    assert op.v("mid") == pytest.approx(1.5, rel=1e-6)
    assert op.i("v1") == pytest.approx(-0.5e-3, rel=1e-6)


def test_current_source_into_resistor(tech):
    c = Circuit("ir")
    c.add_isource("i1", "0", "n", 1e-3)
    c.add_resistor("r1", "n", "0", 2000.0)
    op = dc_operating_point(compiled(c, tech))
    assert op.v("n") == pytest.approx(2.0, rel=1e-6)


def test_ground_voltage_is_zero(tech):
    c = Circuit("g")
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_resistor("r1", "a", "0", 1.0e3)
    op = dc_operating_point(compiled(c, tech))
    assert op.v("0") == 0.0
    assert op.v("gnd") == 0.0


def test_vcvs_gain(tech):
    c = Circuit("e")
    c.add_vsource("v1", "in", "0", 0.25)
    c.add_vcvs("e1", "out", "0", "in", "0", 4.0)
    c.add_resistor("rl", "out", "0", 1e3)
    op = dc_operating_point(compiled(c, tech))
    assert op.v("out") == pytest.approx(1.0, rel=1e-9)


def test_vccs_transconductance(tech):
    c = Circuit("gm")
    c.add_vsource("v1", "in", "0", 0.5)
    c.add_vccs("g1", "0", "out", "in", "0", 2e-3)  # pushes into out
    c.add_resistor("rl", "out", "0", 1e3)
    op = dc_operating_point(compiled(c, tech))
    assert op.v("out") == pytest.approx(1.0, rel=1e-9)


def test_inductor_is_dc_short(tech):
    c = Circuit("l")
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_inductor("l1", "a", "b", 1e-9)
    c.add_resistor("r1", "b", "0", 1e3)
    op = dc_operating_point(compiled(c, tech))
    assert op.v("b") == pytest.approx(1.0, rel=1e-6)
    assert op.i("l1") == pytest.approx(1e-3, rel=1e-6)


def test_diode_connected_nmos(tech):
    c = Circuit("dio")
    c.add_isource("i1", "0", "d", 100e-6)
    c.add_mosfet("m1", "d", "d", "0", "0", tech.nmos, MosGeometry(8, 4, 1))
    op = dc_operating_point(compiled(c, tech))
    vgs = op.v("d")
    assert 0.2 < vgs < 0.7
    assert op.mos("m1")["id"] == pytest.approx(100e-6, rel=1e-4)


def test_nmos_resistor_load_kcl(tech):
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    c.add_vsource("vg", "g", "0", 0.5)
    c.add_resistor("rl", "vdd", "d", 5e3)
    c.add_mosfet("m1", "d", "g", "0", "0", tech.nmos, MosGeometry(8, 2, 1))
    op = dc_operating_point(compiled(c, tech))
    i_r = (op.v("vdd") - op.v("d")) / 5e3
    assert i_r == pytest.approx(op.mos("m1")["id"], rel=1e-4)


def test_cmos_inverter_transfer(tech):
    def inverter_out(vin):
        c = Circuit("cminv")
        c.add_vsource("vdd", "vdd", "0", 0.8)
        c.add_vsource("vin", "in", "0", vin)
        c.add_mosfet("mp", "out", "in", "vdd", "vdd", tech.pmos, MosGeometry(8, 2, 1))
        c.add_mosfet("mn", "out", "in", "0", "0", tech.nmos, MosGeometry(8, 2, 1))
        return dc_operating_point(compiled(c, tech)).v("out")

    assert inverter_out(0.0) > 0.75
    assert inverter_out(0.8) < 0.05
    # Monotone-decreasing transfer with a threshold inside the rails.
    lo, hi = inverter_out(0.3), inverter_out(0.5)
    assert lo > hi
    assert inverter_out(0.2) > 0.5


def test_warm_start_converges_faster(tech):
    c = Circuit("ws")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    c.add_resistor("rl", "vdd", "d", 2e3)
    c.add_vsource("vg", "g", "0", 0.6)
    c.add_mosfet("m1", "d", "g", "0", "0", tech.nmos, MosGeometry(8, 4, 1))
    cc = compiled(c, tech)
    op1 = dc_operating_point(cc)
    op2 = dc_operating_point(cc, x0=op1.x)
    assert np.allclose(op1.x, op2.x, atol=1e-9)


def test_force_pins_node(tech):
    c = Circuit("force")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    c.add_resistor("r1", "vdd", "a", 1e3)
    c.add_resistor("r2", "a", "0", 1e3)
    op_free = dc_operating_point(compiled(c, tech))
    op_forced = dc_operating_point(compiled(c, tech), force={"a": 0.1})
    assert op_free.v("a") == pytest.approx(0.4, rel=1e-4)
    assert op_forced.v("a") < 0.2


def test_branch_current_unknown_element(tech):
    c = Circuit("b")
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_resistor("r1", "a", "0", 1e3)
    op = dc_operating_point(compiled(c, tech))
    with pytest.raises(NetlistError):
        op.i("r1")


def test_dc_sweep_monotone(tech):
    c = Circuit("sweep")
    c.add_vsource("vg", "g", "0", 0.0)
    c.add_vsource("vd", "d", "0", 0.8)
    c.add_mosfet("m1", "d", "g", "0", "0", tech.nmos, MosGeometry(8, 2, 1))
    cc = compiled(c, tech)
    points = dc_sweep(cc, "vg", np.linspace(0.0, 0.8, 9))
    currents = [-p.i("vd") for p in points]
    assert all(b >= a - 1e-12 for a, b in zip(currents, currents[1:]))
    assert currents[-1] > 1e-5


def test_dc_sweep_restores_source(tech):
    c = Circuit("sweep2")
    c.add_vsource("vg", "g", "0", 0.123)
    c.add_resistor("r", "g", "0", 1e3)
    cc = compiled(c, tech)
    dc_sweep(cc, "vg", np.array([0.0, 0.5]))
    assert c.element("vg").waveform.dc_value == 0.123


def test_dc_sweep_requires_source(tech):
    c = Circuit("sweep3")
    c.add_vsource("vg", "g", "0", 0.0)
    c.add_resistor("r", "g", "0", 1e3)
    cc = compiled(c, tech)
    with pytest.raises(NetlistError):
        dc_sweep(cc, "r", np.array([1.0]))


def test_bistable_latch_converges(tech):
    """Cross-coupled inverters (bistable) still yield an operating point.

    Newton tends to limit-cycle between the two stable basins; the
    oscillation-aware damping must settle it into one.
    """
    c = Circuit("latch")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    for a, b in (("q", "qb"), ("qb", "q")):
        c.add_mosfet(f"mp_{a}", a, b, "vdd", "vdd", tech.pmos, MosGeometry(8, 2, 1))
        c.add_mosfet(f"mn_{a}", a, b, "0", "0", tech.nmos, MosGeometry(8, 2, 1))
    op = dc_operating_point(compiled(c, tech))
    # Some consistent solution: both nodes inside the rails.
    assert -0.01 <= op.v("q") <= 0.81
    assert -0.01 <= op.v("qb") <= 0.81


def test_latch_with_force_lands_in_chosen_basin(tech):
    c = Circuit("latch2")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    for a, b in (("q", "qb"), ("qb", "q")):
        c.add_mosfet(f"mp_{a}", a, b, "vdd", "vdd", tech.pmos, MosGeometry(8, 2, 1))
        c.add_mosfet(f"mn_{a}", a, b, "0", "0", tech.nmos, MosGeometry(8, 2, 1))
    op = dc_operating_point(compiled(c, tech), force={"q": 0.8, "qb": 0.0})
    assert op.v("q") > 0.6
    assert op.v("qb") < 0.2
