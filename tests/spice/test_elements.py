"""Element dataclass validation."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.errors import NetlistError
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.waveforms import Dc


def test_resistor_validation():
    Resistor("r", "a", "b", 1.0)
    with pytest.raises(NetlistError):
        Resistor("r", "a", "b", 0.0)
    with pytest.raises(NetlistError):
        Resistor("r", "a", "b", -5.0)


def test_capacitor_allows_zero():
    assert Capacitor("c", "a", "b", 0.0).value == 0.0
    with pytest.raises(NetlistError):
        Capacitor("c", "a", "b", -1e-15)


def test_inductor_validation():
    with pytest.raises(NetlistError):
        Inductor("l", "a", "b", 0.0)


def test_source_defaults():
    v = VoltageSource("v", "p", "n")
    assert isinstance(v.waveform, Dc)
    assert v.ac_magnitude == 0.0
    i = CurrentSource("i", "a", "b")
    assert i.waveform.dc_value == 0.0


def test_controlled_sources_fields():
    e = Vcvs("e", "p", "n", "cp", "cm", 10.0)
    assert e.gain == 10.0
    g = Vccs("g", "a", "b", "cp", "cm", 1e-3)
    assert g.ctrl_plus == "cp"


def test_mosfet_defaults(tech):
    m = Mosfet("m", "d", "g", "s", "b", tech.nmos, MosGeometry(8))
    assert m.lde.vth_shift == 0.0
    assert m.cdb_override is None
    assert m.vth_mismatch == 0.0


def test_elements_frozen(tech):
    r = Resistor("r", "a", "b", 1.0)
    with pytest.raises(Exception):
        r.value = 2.0
