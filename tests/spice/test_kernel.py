"""The solver kernel: backend selection, pattern reuse, recovery, stats.

ISSUE acceptance: the sparse and dense backends are interchangeable —
same matrices, same solutions, same Tikhonov recovery tag — and the
solver choice resolves per-call argument > CLI default > environment >
auto-by-size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError, SingularMatrixError
from repro.spice import kernel
from repro.spice.kernel import Factorization, SolverStats, SystemTemplate


@pytest.fixture(autouse=True)
def _clean_solver_config(monkeypatch):
    """Isolate each test from the process-wide solver default."""
    monkeypatch.delenv(kernel.SOLVER_ENV, raising=False)
    kernel.set_default_solver(None)
    yield
    kernel.set_default_solver(None)


# -- solver resolution ---------------------------------------------------


def test_resolution_defaults_to_auto():
    assert kernel.resolve_solver() == kernel.AUTO


def test_resolution_precedence(monkeypatch):
    monkeypatch.setenv(kernel.SOLVER_ENV, "sparse")
    assert kernel.resolve_solver() == kernel.SPARSE
    kernel.set_default_solver("dense")  # CLI beats env
    assert kernel.resolve_solver() == kernel.DENSE
    assert kernel.resolve_solver("sparse") == kernel.SPARSE  # arg beats CLI


def test_invalid_choices_rejected(monkeypatch):
    with pytest.raises(SimulationError, match="unknown solver"):
        kernel.set_default_solver("cholesky")
    with pytest.raises(SimulationError, match="solver argument"):
        kernel.resolve_solver("qr")
    monkeypatch.setenv(kernel.SOLVER_ENV, "banana")
    with pytest.raises(SimulationError, match=kernel.SOLVER_ENV):
        kernel.resolve_solver()


def test_backend_auto_selects_by_size():
    assert kernel.backend_for(kernel.SPARSE_MIN_SIZE - 1) == kernel.DENSE
    assert kernel.backend_for(kernel.SPARSE_MIN_SIZE) == kernel.SPARSE
    # An explicit choice wins at any size.
    assert kernel.backend_for(2, "sparse") == kernel.SPARSE
    assert kernel.backend_for(10_000, "dense") == kernel.DENSE


# -- SystemTemplate ------------------------------------------------------


def _random_system(n=7, seed=3, dtype=float):
    """A well-conditioned random MNA-like triplet system.

    Includes duplicate (row, col) entries (stamps accumulate) and ghost
    entries at index ``n`` (the grounded terminal row/column every MNA
    stamp writes and the solve discards).
    """
    rng = np.random.default_rng(seed)
    m = 4 * n
    rows = rng.integers(0, n + 1, size=m)
    cols = rng.integers(0, n + 1, size=m)
    static_vals = rng.normal(size=m)
    if dtype is complex:
        static_vals = static_vals + 1j * rng.normal(size=m)
    # Diagonal dominance so the system is nonsingular.
    diag = np.arange(n)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    static_vals = np.concatenate([static_vals, np.full(n, 10.0, dtype=dtype)])
    dyn_rows = rng.integers(0, n + 1, size=6)
    dyn_cols = rng.integers(0, n + 1, size=6)
    return n, (rows, cols, static_vals), dyn_rows, dyn_cols


@pytest.mark.parametrize("dtype", [float, complex])
def test_dense_and_sparse_assemble_identically(dtype):
    n, static, dyn_rows, dyn_cols = _random_system(dtype=dtype)
    dyn_vals = np.linspace(0.5, 1.5, len(dyn_rows)).astype(dtype)
    dense = SystemTemplate(
        n, static, dyn_rows, dyn_cols, dtype=dtype, backend=kernel.DENSE
    )
    sparse = SystemTemplate(
        n, static, dyn_rows, dyn_cols, dtype=dtype, backend=kernel.SPARSE
    )
    a_dense = dense.dense_matrix(dyn_vals)
    a_sparse = sparse.dense_matrix(dyn_vals)
    np.testing.assert_allclose(a_sparse, a_dense, rtol=0, atol=0)


@pytest.mark.parametrize("dtype", [float, complex])
def test_dense_and_sparse_solve_identically(dtype):
    n, static, dyn_rows, dyn_cols = _random_system(dtype=dtype)
    dyn_vals = np.linspace(-1.0, 1.0, len(dyn_rows)).astype(dtype)
    rhs = np.arange(1, n + 1, dtype=dtype)
    results = {}
    for backend in (kernel.DENSE, kernel.SPARSE):
        template = SystemTemplate(
            n, static, dyn_rows, dyn_cols, dtype=dtype, backend=backend
        )
        x, recovered = template.solve(dyn_vals, rhs)
        assert recovered is None
        results[backend] = x
    np.testing.assert_allclose(
        results[kernel.SPARSE], results[kernel.DENSE], rtol=1e-12, atol=1e-14
    )


def test_dynamic_values_overwrite_not_accumulate():
    """Repeated solves on one template must not leak previous values."""
    n, static, dyn_rows, dyn_cols = _random_system()
    rhs = np.ones(n)
    for backend in (kernel.DENSE, kernel.SPARSE):
        template = SystemTemplate(
            n, static, dyn_rows, dyn_cols, backend=backend
        )
        first, _ = template.solve(np.full(len(dyn_rows), 2.0), rhs)
        template.solve(np.full(len(dyn_rows), 99.0), rhs)
        again, _ = template.solve(np.full(len(dyn_rows), 2.0), rhs)
        np.testing.assert_allclose(again, first, rtol=0, atol=0)


@pytest.mark.parametrize("backend", [kernel.DENSE, kernel.SPARSE])
def test_factorization_reuse_matches_fresh_solve(backend):
    n, static, dyn_rows, dyn_cols = _random_system()
    dyn_vals = np.full(len(dyn_rows), 0.25)
    template = SystemTemplate(n, static, dyn_rows, dyn_cols, backend=backend)
    factorization = template.factor(dyn_vals)
    assert isinstance(factorization, Factorization)
    for k in range(3):
        rhs = np.roll(np.arange(1, n + 1, dtype=float), k)
        direct, _ = template.solve(dyn_vals, rhs)
        np.testing.assert_allclose(
            factorization.solve(rhs), direct, rtol=1e-12, atol=1e-14
        )


@pytest.mark.parametrize("backend", [kernel.DENSE, kernel.SPARSE])
def test_singular_system_recovers_with_tikhonov_tag(backend):
    # A floating node: row/column 2 is all zeros -> structurally singular.
    n = 3
    rows = np.array([0, 1, 0, 1])
    cols = np.array([0, 1, 1, 0])
    vals = np.array([2.0, 3.0, 1.0, 1.0])
    template = SystemTemplate(
        n,
        (rows, cols, vals),
        np.array([], dtype=np.intp),
        np.array([], dtype=np.intp),
        backend=backend,
    )
    x, recovered = template.solve(np.array([]), np.array([1.0, 1.0, 0.0]))
    assert recovered == kernel.RECOVERY_TIKHONOV
    assert np.all(np.isfinite(x))
    # The regularized solution still satisfies the nonsingular rows.
    a = template.dense_matrix(np.array([]))
    np.testing.assert_allclose((a @ x)[:2], [1.0, 1.0], atol=1e-6)


def test_solve_dense_function_tags_recovery():
    good = np.array([[2.0, 0.0], [0.0, 4.0]])
    x, tag = kernel.solve_dense(good, np.array([2.0, 8.0]))
    assert tag is None
    np.testing.assert_allclose(x, [1.0, 2.0])
    singular = np.array([[1.0, 1.0], [1.0, 1.0]])
    x, tag = kernel.solve_dense(singular, np.array([1.0, 1.0]))
    assert tag == kernel.RECOVERY_TIKHONOV
    assert np.all(np.isfinite(x))


def test_factorization_rejects_nonfinite_solutions():
    # A singular matrix factors without error in dense LAPACK but its
    # triangular solve produces inf/nan; the Factorization wrapper must
    # surface that as SingularMatrixError, not return garbage.
    n = 2
    rows = np.array([0, 0, 1, 1])
    cols = np.array([0, 1, 0, 1])
    vals = np.array([1.0, 1.0, 1.0, 1.0])
    template = SystemTemplate(
        n,
        (rows, cols, vals),
        np.array([], dtype=np.intp),
        np.array([], dtype=np.intp),
        backend=kernel.DENSE,
    )
    factorization = template.factor(np.array([]))
    with pytest.raises(SingularMatrixError):
        factorization.solve(np.array([1.0, 2.0]))


# -- profiling stats -----------------------------------------------------


def test_stats_collects_only_inside_context():
    n, static, dyn_rows, dyn_cols = _random_system()
    template = SystemTemplate(
        n, static, dyn_rows, dyn_cols, backend=kernel.SPARSE
    )
    rhs = np.ones(n)
    dyn = np.zeros(len(dyn_rows))
    template.solve(dyn, rhs)  # outside: not counted anywhere
    stats = SolverStats()
    assert not stats
    with kernel.collect(stats):
        assert kernel.active() is stats
        template.solve(dyn, rhs)
        template.solve(dyn, rhs)
    assert kernel.active() is None
    assert stats.solves == 2
    assert stats.backends == {kernel.SPARSE: 2}
    assert bool(stats)


def test_stats_merge_and_dict_roundtrip():
    a = SolverStats(solves=3, newton_iterations=7, tran_steps=11)
    a.count_analysis("dc")
    a.count_backend("dense")
    b = SolverStats(solves=2, lu_reuses=5, tran_rejected=1)
    b.count_analysis("dc")
    b.count_analysis("tran")
    b.count_backend("sparse")
    a.merge(b)
    assert a.solves == 5
    assert a.analyses == {"dc": 2, "tran": 1}
    assert a.backends == {"dense": 1, "sparse": 1}
    rebuilt = SolverStats.from_dict(a.as_dict())
    assert rebuilt.as_dict() == a.as_dict()
