"""Measurement post-processing on synthetic data."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MeasureError
from repro.spice import measure


def single_pole(freqs, a0=100.0, fp=1e6):
    return a0 / (1 + 1j * freqs / fp)


@pytest.fixture(scope="module")
def freqs():
    return np.logspace(3, 11, 400)


def test_low_frequency_gain(freqs):
    h = single_pole(freqs)
    assert measure.low_frequency_gain(h) == pytest.approx(100.0, rel=1e-3)
    assert measure.low_frequency_gain_db(h) == pytest.approx(40.0, abs=0.01)


def test_unity_gain_frequency_single_pole(freqs):
    h = single_pole(freqs)
    # UGF of a single pole: a0 * fp (for a0 >> 1).
    assert measure.unity_gain_frequency(freqs, h) == pytest.approx(1e8, rel=0.02)


def test_bandwidth_3db(freqs):
    h = single_pole(freqs)
    assert measure.bandwidth_3db(freqs, h) == pytest.approx(1e6, rel=0.02)


def test_phase_margin_single_pole(freqs):
    h = single_pole(freqs)
    pm = measure.phase_margin(freqs, h)
    assert pm == pytest.approx(90.6, abs=2.0)  # a single pole leaves ~90 deg


def test_phase_margin_two_pole(freqs):
    h = single_pole(freqs) / (1 + 1j * freqs / 1e8)
    pm = measure.phase_margin(freqs, h)
    assert 40.0 < pm < 60.0  # second pole at UGF costs ~45 deg


def test_no_unity_crossing_raises(freqs):
    h = 0.5 * single_pole(freqs) / 100.0  # gain < 1 everywhere
    with pytest.raises(MeasureError):
        measure.unity_gain_frequency(freqs, h)


def test_capacitance_from_admittance(freqs):
    c = 2e-12
    y = 1j * 2 * np.pi * freqs * c
    assert measure.capacitance_from_admittance(freqs, y, 10) == pytest.approx(c)


def test_resistance_from_admittance():
    y = np.array([1.0 / 5e3 + 0j])
    assert measure.resistance_from_admittance(y) == pytest.approx(5e3)
    with pytest.raises(MeasureError):
        measure.resistance_from_admittance(np.array([0j]))


def test_crossing_times_directions():
    t = np.linspace(0, 1, 1001)
    wave = np.sin(2 * np.pi * 3 * t)
    # sin starts ON the level, so the t=0 up-crossing is not counted:
    # interior rises at 1/3 and 2/3, falls at 1/6, 1/2 and 5/6.
    rises = measure.crossing_times(t, wave, 0.0, "rise")
    falls = measure.crossing_times(t, wave, 0.0, "fall")
    both = measure.crossing_times(t, wave, 0.0, "both")
    assert len(rises) == 2
    assert len(falls) == 3
    assert len(both) == 5


def test_crossing_interpolation_accuracy():
    t = np.array([0.0, 1.0])
    wave = np.array([0.0, 2.0])
    times = measure.crossing_times(t, wave, 1.0, "rise")
    assert times[0] == pytest.approx(0.5)


def test_delay_between():
    t = np.linspace(0, 10e-9, 1001)
    a = (t > 2e-9).astype(float)
    b = (t > 5e-9).astype(float)
    d = measure.delay_between(t, a, b, 0.5, 0.5)
    assert d == pytest.approx(3e-9, abs=0.05e-9)


def test_delay_between_no_crossing_raises():
    t = np.linspace(0, 1e-9, 100)
    a = (t > 0.5e-9).astype(float)
    flat = np.zeros_like(t)
    with pytest.raises(MeasureError):
        measure.delay_between(t, a, flat, 0.5, 0.5)


def test_oscillation_frequency_pure_tone():
    t = np.linspace(0, 10e-9, 4001)
    wave = 0.4 + 0.3 * np.sin(2 * np.pi * 2e9 * t)
    f = measure.oscillation_frequency(t, wave)
    assert f == pytest.approx(2e9, rel=0.01)


def test_oscillation_frequency_flat_raises():
    t = np.linspace(0, 1e-9, 100)
    with pytest.raises(MeasureError):
        measure.oscillation_frequency(t, np.full_like(t, 0.4))


def test_oscillation_frequency_too_few_cycles_raises():
    t = np.linspace(0, 1e-9, 500)
    wave = np.sin(2 * np.pi * 1e9 * t)  # one cycle
    with pytest.raises(MeasureError):
        measure.oscillation_frequency(t, wave, settle_fraction=0.0)


@given(st.floats(min_value=1e8, max_value=5e9))
def test_oscillation_frequency_property(f0):
    t = np.linspace(0, 20 / f0, 3000)
    wave = np.sin(2 * np.pi * f0 * t)
    f = measure.oscillation_frequency(t, wave, settle_fraction=0.2)
    assert f == pytest.approx(f0, rel=0.02)


def test_average_power_sign_convention():
    t = np.linspace(0, 1e-9, 101)
    i_source = np.full_like(t, -1e-3)  # sourcing 1mA
    p = measure.average_power(t, i_source, vdd=0.8)
    assert p == pytest.approx(0.8e-3)


def test_peak_to_peak():
    assert measure.peak_to_peak(np.array([-1.0, 0.3, 2.0])) == 3.0


def test_find_dc_zero_linear():
    root = measure.find_dc_zero(lambda x: 2 * x - 0.5, -1.0, 1.0)
    assert root == pytest.approx(0.25, abs=1e-6)


def test_find_dc_zero_no_sign_change():
    with pytest.raises(MeasureError):
        measure.find_dc_zero(lambda x: x * x + 1.0, -1.0, 1.0)


def test_find_dc_zero_endpoint_roots():
    assert measure.find_dc_zero(lambda x: x, 0.0, 1.0) == 0.0
    assert measure.find_dc_zero(lambda x: x - 1.0, 0.0, 1.0) == 1.0


def test_magnitude_and_phase_helpers():
    h = np.array([1.0 + 0j, 0.1 + 0j])
    db = measure.magnitude_db(h)
    assert db[0] == pytest.approx(0.0, abs=1e-9)
    assert db[1] == pytest.approx(-20.0, abs=1e-6)
    ph = measure.phase_deg(np.array([1j, -1.0 + 0j]))
    assert ph[0] == pytest.approx(90.0)


@given(
    st.floats(min_value=20.0, max_value=1e4),
    st.floats(min_value=1e4, max_value=1e8),
)
def test_single_pole_identities_property(a0, fp):
    """UGF = fp*sqrt(a0^2-1) and f3db = fp for a single-pole response."""
    freqs = np.logspace(2, 13, 600)
    h = a0 / (1 + 1j * freqs / fp)
    assert measure.bandwidth_3db(freqs, h) == pytest.approx(fp, rel=0.03)
    assert measure.unity_gain_frequency(freqs, h) == pytest.approx(
        fp * np.sqrt(a0**2 - 1.0), rel=0.05
    )


@given(st.floats(min_value=-0.9, max_value=0.9))
def test_crossing_count_even_for_periodic(level):
    t = np.linspace(0, 1, 4001)
    wave = np.sin(2 * np.pi * 5 * t + 0.3)
    rises = measure.crossing_times(t, wave, level, "rise")
    falls = measure.crossing_times(t, wave, level, "fall")
    # Periodic signal: rising and falling counts differ by at most one.
    assert abs(len(rises) - len(falls)) <= 1
    assert len(rises) >= 4


def two_pole_bandpass(freqs, fz=1e4, p1=1e6, p2=1e8):
    """Band-pass-ish two-pole: |h| starts below 1, peaks, falls back."""
    return (1j * freqs / fz) / ((1 + 1j * freqs / p1) * (1 + 1j * freqs / p2))


def test_crossing_when_response_starts_below_target(freqs):
    # Regression: _log_interp_crossing used to fail (or pick the wrong
    # bracket) when the first sweep point sat below the target — it must
    # skip to the first at-or-above point and report the *downward*
    # crossing past the peak.
    h = two_pole_bandpass(freqs)
    assert abs(h[0]) < 1.0
    fu = measure.unity_gain_frequency(freqs, h)
    f_peak = freqs[np.argmax(np.abs(h))]
    assert fu > f_peak
    # The reported frequency really is a unity point of the response.
    assert abs(two_pole_bandpass(np.array([fu]))[0]) == pytest.approx(1.0, rel=0.05)


def test_crossing_in_first_interval_uses_first_bracket():
    # Downward crossing between the first two sweep points must
    # interpolate inside [f0, f1], not a later bracket.
    freqs = np.array([1e3, 1e4, 1e5, 1e6])
    values = np.array([2.0, 0.5, 0.4, 0.3])
    fx = measure._log_interp_crossing(freqs, values, 1.0)
    assert 1e3 < fx < 1e4


def test_crossing_never_reaches_target_raises():
    freqs = np.array([1e3, 1e4, 1e5])
    with pytest.raises(MeasureError, match="never reaches"):
        measure._log_interp_crossing(freqs, np.array([0.2, 0.8, 0.5]), 1.0)


def test_crossing_never_descends_raises():
    freqs = np.array([1e3, 1e4, 1e5])
    with pytest.raises(MeasureError, match="never crosses"):
        measure._log_interp_crossing(freqs, np.array([0.5, 1.5, 2.5]), 1.0)


def test_phase_margin_wrap_at_crossing_raises():
    # Under-resolved sweep: the raw phase jumps across the ±180° branch
    # cut inside the interval bracketing the unity-gain crossing, so the
    # unwrap correction there is guesswork — phase_margin must refuse
    # rather than interpolate a plausible wrong number.
    freqs = np.array([1e5, 1e6, 1e7, 1e8])
    mags = np.array([8.0, 3.0, 1.5, 0.5])
    raw_deg = np.array([-20.0, -90.0, -170.0, 170.0])
    h = mags * np.exp(1j * np.deg2rad(raw_deg))
    with pytest.raises(MeasureError, match="phase wraps"):
        measure.phase_margin(freqs, h)


def test_phase_margin_fine_two_pole_unaffected_by_guard(freqs):
    # The same two-pole shape on a fine sweep stays below a half-turn
    # per interval everywhere and must keep measuring normally.
    h = single_pole(freqs) / (1 + 1j * freqs / 1e8)
    pm = measure.phase_margin(freqs, h)
    assert 40.0 < pm < 60.0
