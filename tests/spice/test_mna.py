"""MNA compilation: indexing, stamping, device arrays."""

import numpy as np
import pytest

from repro.devices.mosfet import MosGeometry
from repro.errors import NetlistError
from repro.spice import Circuit, CompiledCircuit, dc_operating_point


def test_node_indexing(tech):
    c = Circuit("t")
    c.add_resistor("r1", "b", "a", 1.0)
    c.add_resistor("r2", "a", "0", 1.0)
    cc = CompiledCircuit(c, tech.rules)
    assert cc.num_nodes == 2
    assert cc.nodes == ["a", "b"]
    assert cc.index_of("0") == cc.ghost


def test_unknown_node_raises(tech):
    c = Circuit("t")
    c.add_resistor("r1", "a", "0", 1.0)
    cc = CompiledCircuit(c, tech.rules)
    with pytest.raises(NetlistError):
        cc.index_of("zz")


def test_branch_indices_for_sources_and_inductors(tech):
    c = Circuit("t")
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_inductor("l1", "a", "b", 1e-9)
    c.add_resistor("r1", "b", "0", 1.0)
    cc = CompiledCircuit(c, tech.rules)
    assert cc.num_branches == 2
    assert set(cc.branch_index) == {"v1", "l1"}
    assert cc.size == cc.num_nodes + 2


def test_conductance_matrix_symmetric_for_resistors(tech):
    c = Circuit("t")
    c.add_resistor("r1", "a", "b", 2.0)
    c.add_resistor("r2", "b", "0", 4.0)
    cc = CompiledCircuit(c, tech.rules)
    g = cc.conductance_linear()[: cc.size, : cc.size]
    assert np.allclose(g, g.T)
    ia, ib = cc.index_of("a"), cc.index_of("b")
    assert g[ia, ia] == pytest.approx(0.5)
    assert g[ib, ib] == pytest.approx(0.75)
    assert g[ia, ib] == pytest.approx(-0.5)


def test_capacitance_matrix(tech):
    c = Circuit("t")
    c.add_capacitor("c1", "a", "0", 3e-15)
    c.add_resistor("r1", "a", "0", 1.0)
    cc = CompiledCircuit(c, tech.rules)
    cm = cc.capacitance_linear()
    ia = cc.index_of("a")
    assert cm[ia, ia] == pytest.approx(3e-15)


def test_source_rhs_dc_and_time(tech):
    from repro.spice.waveforms import Pulse

    c = Circuit("t")
    c.add_isource("i1", "0", "a", Pulse(1e-3, 2e-3, delay=1e-9, rise=1e-12))
    c.add_resistor("r1", "a", "0", 1.0)
    cc = CompiledCircuit(c, tech.rules)
    ia = cc.index_of("a")
    assert cc.source_rhs(t=None)[ia] == pytest.approx(1e-3)
    assert cc.source_rhs(t=2e-9)[ia] == pytest.approx(2e-3)
    assert cc.source_rhs(t=None, scale=0.5)[ia] == pytest.approx(0.5e-3)


def test_mosfet_arrays_and_eval(tech):
    c = Circuit("t")
    c.add_vsource("vd", "d", "0", 0.8)
    c.add_vsource("vg", "g", "0", 0.6)
    c.add_mosfet("m1", "d", "g", "0", "0", tech.nmos, MosGeometry(8, 2, 1))
    c.add_mosfet("m2", "d", "g", "0", "0", tech.nmos, MosGeometry(8, 4, 1))
    cc = CompiledCircuit(c, tech.rules)
    op = dc_operating_point(cc)
    ev = op.mos_eval
    assert ev is not None
    # m2 has twice the fins of m1: twice the current.
    assert ev.ids[1] == pytest.approx(2 * ev.ids[0], rel=1e-9)
    assert op.mos("m1")["id"] == pytest.approx(float(ev.ids[0]))


def test_mos_eval_unknown_name(tech):
    c = Circuit("t")
    c.add_vsource("vd", "d", "0", 0.8)
    c.add_mosfet("m1", "d", "d", "0", "0", tech.nmos, MosGeometry(8))
    cc = CompiledCircuit(c, tech.rules)
    op = dc_operating_point(cc)
    with pytest.raises(NetlistError):
        op.mos("zz")


def test_mos_capacitance_matrix_symmetric(tech):
    c = Circuit("t")
    c.add_vsource("vd", "d", "0", 0.8)
    c.add_vsource("vg", "g", "0", 0.5)
    c.add_mosfet("m1", "d", "g", "0", "0", tech.nmos, MosGeometry(8, 2, 1))
    cc = CompiledCircuit(c, tech.rules)
    op = dc_operating_point(cc)
    cm = cc.mos_capacitance(op.mos_eval)[: cc.size, : cc.size]
    assert np.allclose(cm, cm.T)
    # Diagonal entries non-negative.
    assert np.all(np.diag(cm) >= 0)


def test_ac_source_rhs_phasors(tech):
    c = Circuit("t")
    c.add_vsource("v1", "a", "0", 0.0, ac_magnitude=2.0, ac_phase_deg=90.0)
    c.add_resistor("r1", "a", "0", 1.0)
    cc = CompiledCircuit(c, tech.rules)
    rhs = cc.ac_source_rhs()
    br = cc.branch_index["v1"]
    assert rhs[br] == pytest.approx(2j)


def test_unsupported_element_type(tech):
    c = Circuit("t")

    class Bogus:
        name = "x"

    c._elements.append(Bogus())  # bypass type checks deliberately
    c._names.add("x")
    with pytest.raises(NetlistError):
        CompiledCircuit(c, tech.rules)
