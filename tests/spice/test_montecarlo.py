"""Monte-Carlo mismatch analysis."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.errors import SimulationError
from repro.spice import Circuit, CompiledCircuit, dc_operating_point
from repro.spice.montecarlo import run_monte_carlo


def diode_circuit(tech, nfins=(8, 4, 1)):
    c = Circuit("dio")
    c.add_isource("ib", "0", "d", 50e-6)
    c.add_mosfet("m1", "d", "d", "0", "0", tech.nmos, MosGeometry(*nfins))
    return c


def vgs_of(tech):
    def evaluate(circuit):
        op = dc_operating_point(CompiledCircuit(circuit, tech.rules))
        return op.v("d")

    return evaluate


def test_deterministic_given_seed(tech):
    c = diode_circuit(tech)
    r1 = run_monte_carlo(c, tech.rules, vgs_of(tech), n_samples=10, seed=7)
    r2 = run_monte_carlo(c, tech.rules, vgs_of(tech), n_samples=10, seed=7)
    assert r1.samples == r2.samples


def test_spread_matches_sigma(tech):
    # Vgs of a diode shifts ~1:1 with Vth: sample std ~ sigma_vth.
    from repro.devices.mosfet import resolve_params

    c = diode_circuit(tech)
    sigma = resolve_params(tech.nmos, tech.rules, MosGeometry(8, 4, 1)).sigma_vth
    result = run_monte_carlo(c, tech.rules, vgs_of(tech), n_samples=80, seed=3)
    assert result.std == pytest.approx(sigma, rel=0.35)


def test_bigger_device_less_spread(tech):
    small = run_monte_carlo(
        diode_circuit(tech, (8, 2, 1)), tech.rules, vgs_of(tech), 40, seed=5
    )
    large = run_monte_carlo(
        diode_circuit(tech, (8, 8, 4)), tech.rules, vgs_of(tech), 40, seed=5
    )
    assert large.std < small.std


def test_match_groups_zero_mean(tech, small_dp):
    # Matched-group sampling removes the common-mode shift: a DP's
    # offset distribution stays centred.
    dut = small_dp.schematic_circuit()

    def offset_of(circuit):
        values, _ = small_dp.evaluate(circuit)
        return values["offset"]

    result = run_monte_carlo(
        dut,
        small_dp.tech.rules,
        offset_of,
        n_samples=12,
        seed=11,
        match_groups=[("MA", "MB")],
    )
    # |offset| samples: positive, below ~4 sigma of the pair.
    assert all(s >= 0 for s in result.samples)
    assert result.percentile(95) < 5 * small_dp.random_offset_sigma()


def test_validation(tech):
    c = Circuit("empty")
    c.add_resistor("r", "a", "0", 1.0)
    with pytest.raises(SimulationError):
        run_monte_carlo(c, tech.rules, lambda _: 0.0, 5)
    with pytest.raises(SimulationError):
        run_monte_carlo(diode_circuit(tech), tech.rules, lambda _: 0.0, 0)
