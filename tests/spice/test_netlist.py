"""Circuit container: element management, node queries, hierarchy."""

import pytest

from repro.devices.mosfet import MosGeometry
from repro.errors import NetlistError
from repro.spice.netlist import Circuit, element_nodes, is_ground


def test_is_ground_spellings():
    for name in ("0", "gnd", "GND", "Gnd", "vss!"):
        assert is_ground(name)
    assert not is_ground("vdd!")
    assert not is_ground("out")


def test_add_elements_and_lookup():
    c = Circuit("t")
    c.add_resistor("r1", "a", "b", 100.0)
    c.add_capacitor("c1", "b", "0", 1e-15)
    assert len(c) == 2
    assert c.element("r1").value == 100.0


def test_duplicate_names_rejected():
    c = Circuit("t")
    c.add_resistor("r1", "a", "b", 100.0)
    with pytest.raises(NetlistError):
        c.add_resistor("r1", "b", "c", 200.0)


def test_replace_element():
    c = Circuit("t")
    c.add_resistor("r1", "a", "b", 100.0)
    from repro.spice.elements import Resistor

    c.replace_element("r1", Resistor("r1", "a", "b", 50.0))
    assert c.element("r1").value == 50.0


def test_replace_missing_raises():
    c = Circuit("t")
    from repro.spice.elements import Resistor

    with pytest.raises(NetlistError):
        c.replace_element("rx", Resistor("rx", "a", "b", 1.0))


def test_remove_element():
    c = Circuit("t")
    c.add_resistor("r1", "a", "b", 100.0)
    c.remove_element("r1")
    assert len(c) == 0
    # The name is free again.
    c.add_resistor("r1", "a", "b", 1.0)


def test_nodes_excludes_ground():
    c = Circuit("t")
    c.add_resistor("r1", "a", "0", 100.0)
    c.add_resistor("r2", "a", "b", 100.0)
    assert c.nodes() == ["a", "b"]


def test_mosfets_listing(tech):
    c = Circuit("t")
    c.add_mosfet("m1", "d", "g", "0", "0", tech.nmos, MosGeometry(4))
    c.add_resistor("r1", "d", "0", 1e3)
    assert [m.name for m in c.mosfets()] == ["m1"]


def test_elements_on_node(tech):
    c = Circuit("t")
    c.add_resistor("r1", "a", "b", 1.0)
    c.add_capacitor("c1", "b", "0", 1e-15)
    names = [e.name for e in c.elements_on_node("b")]
    assert names == ["r1", "c1"]


def test_element_nodes_accessor(tech):
    c = Circuit("t")
    m = c.add_mosfet("m1", "d", "g", "s", "b", tech.nmos, MosGeometry(4))
    assert element_nodes(m) == ("d", "g", "s", "b")


def test_instantiate_renames_internals():
    child = Circuit("child")
    child.ports = ["in", "out"]
    child.add_resistor("r1", "in", "mid", 1.0)
    child.add_resistor("r2", "mid", "out", 1.0)

    parent = Circuit("parent")
    parent.instantiate(child, "x1", {"in": "a", "out": "b"})
    nodes = parent.nodes()
    assert "a" in nodes and "b" in nodes
    assert "x1.mid" in nodes
    assert parent.element("x1.r1").a == "a"


def test_instantiate_ground_passthrough():
    child = Circuit("child")
    child.ports = ["in"]
    child.add_resistor("r1", "in", "0", 1.0)
    parent = Circuit("parent")
    parent.instantiate(child, "x1", {"in": "n1"})
    assert parent.element("x1.r1").b == "0"


def test_instantiate_missing_port_mapping():
    child = Circuit("child")
    child.ports = ["in", "out"]
    child.add_resistor("r1", "in", "out", 1.0)
    parent = Circuit("parent")
    with pytest.raises(NetlistError):
        parent.instantiate(child, "x1", {"in": "a"})


def test_instantiate_unknown_port_rejected():
    child = Circuit("child")
    child.ports = ["in"]
    child.add_resistor("r1", "in", "0", 1.0)
    parent = Circuit("parent")
    with pytest.raises(NetlistError):
        parent.instantiate(child, "x1", {"in": "a", "bogus": "b"})


def test_instantiate_twice_distinct_names():
    child = Circuit("child")
    child.ports = ["p"]
    child.add_resistor("r1", "p", "q", 1.0)
    parent = Circuit("parent")
    parent.instantiate(child, "x1", {"p": "a"})
    parent.instantiate(child, "x2", {"p": "a"})
    assert len(parent) == 2
    assert "x1.q" in parent.nodes()
    assert "x2.q" in parent.nodes()


def test_copy_is_independent():
    c = Circuit("t")
    c.ports = ["a"]
    c.add_resistor("r1", "a", "0", 1.0)
    d = c.copy("u")
    d.add_resistor("r2", "a", "0", 1.0)
    assert len(c) == 1
    assert len(d) == 2
    assert d.ports == ["a"]
