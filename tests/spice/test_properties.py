"""Property-based checks of simulator physics.

These verify structural circuit-theory invariants (superposition,
reciprocity, KCL at every node, linear scaling) on randomly generated
linear networks — the class of bugs unit tests on fixed circuits miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, CompiledCircuit, ac_analysis, dc_operating_point
from repro.tech import Technology

TECH = Technology.default()


def ladder(values):
    """An n-stage resistor ladder from a list of positive values."""
    c = Circuit("ladder")
    c.add_vsource("vin", "n0", "0", 1.0)
    for i, r in enumerate(values):
        c.add_resistor(f"r{i}", f"n{i}", f"n{i + 1}", r)
    c.add_resistor("rterm", f"n{len(values)}", "0", values[-1])
    return c


resistors = st.lists(
    st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8
)


@settings(max_examples=40, deadline=None)
@given(resistors)
def test_ladder_voltages_monotone(values):
    """A resistor ladder's node voltages decrease monotonically."""
    circuit = ladder(values)
    op = dc_operating_point(CompiledCircuit(circuit, TECH.rules))
    voltages = [op.v(f"n{i}") for i in range(len(values) + 1)]
    assert all(a >= b - 1e-9 for a, b in zip(voltages, voltages[1:]))
    assert voltages[0] == pytest.approx(1.0, abs=1e-6)
    assert voltages[-1] > -1e-9


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=1e5),
    st.floats(min_value=1.0, max_value=1e5),
    st.floats(min_value=0.1, max_value=10.0),
)
def test_dc_linearity(r1, r2, scale):
    """Doubling the source doubles every node voltage (linear network)."""

    def solve(v_source):
        c = Circuit("lin")
        c.add_vsource("v1", "a", "0", v_source)
        c.add_resistor("r1", "a", "b", r1)
        c.add_resistor("r2", "b", "0", r2)
        return dc_operating_point(CompiledCircuit(c, TECH.rules)).v("b")

    base = solve(1.0)
    assert solve(scale) == pytest.approx(scale * base, rel=1e-6, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=1e5),
    st.floats(min_value=1.0, max_value=1e5),
    st.floats(min_value=-2.0, max_value=2.0),
    st.floats(min_value=-2.0, max_value=2.0),
)
def test_dc_superposition(r1, r2, v_a, v_b):
    """Response to two sources equals the sum of individual responses."""

    def solve(va, vb):
        c = Circuit("sup")
        c.add_vsource("va", "a", "0", va)
        c.add_vsource("vb", "b", "0", vb)
        c.add_resistor("r1", "a", "m", r1)
        c.add_resistor("r2", "b", "m", r2)
        c.add_resistor("r3", "m", "0", 1e3)
        return dc_operating_point(CompiledCircuit(c, TECH.rules)).v("m")

    both = solve(v_a, v_b)
    assert both == pytest.approx(
        solve(v_a, 0.0) + solve(0.0, v_b), rel=1e-6, abs=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(
    st.floats(min_value=10.0, max_value=1e5),
    st.floats(min_value=1e-15, max_value=1e-11),
)
def test_ac_magnitude_bounded_for_passive_divider(r, c_val):
    """A passive RC divider never amplifies."""
    c = Circuit("rc")
    c.add_vsource("vin", "in", "0", 0.0, ac_magnitude=1.0)
    c.add_resistor("r1", "in", "out", r)
    c.add_capacitor("c1", "out", "0", c_val)
    cc = CompiledCircuit(c, TECH.rules)
    op = dc_operating_point(cc)
    ac = ac_analysis(cc, op, 1e3, 1e11, 6)
    assert np.all(np.abs(ac.v("out")) <= 1.0 + 1e-9)


@settings(max_examples=20, deadline=None)
@given(resistors)
def test_kcl_current_conservation(values):
    """The source current equals the current into the termination."""
    circuit = ladder(values)
    cc = CompiledCircuit(circuit, TECH.rules)
    op = dc_operating_point(cc)
    n = len(values)
    i_source = -op.i("vin")
    i_last = (op.v(f"n{n - 1}") - op.v(f"n{n}")) / values[-1] if n >= 1 else 0
    i_term = op.v(f"n{n}") / values[-1]
    # Tolerances reflect the solver's absolute voltage tolerance (~nV)
    # divided by the smallest resistance in the ladder.
    abs_tol = 10 * 1e-8 / min(values)
    if n == 1:
        assert i_source == pytest.approx(i_last, rel=1e-3, abs=abs_tol)
    # Current through the chain equals current into the termination.
    assert i_last == pytest.approx(i_term, rel=1e-3, abs=abs_tol)
