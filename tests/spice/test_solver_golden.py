"""Golden-waveform agreement: sparse backend versus dense backend.

ISSUE acceptance: for each benchmark testbench (5T OTA, StrongARM
comparator, ring-oscillator VCO) the sparse backend reproduces the dense
backend's measured metrics within the cost-function tolerance, and on a
linear network the two backends agree to solver precision pointwise.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    CompiledCircuit,
    dc_operating_point,
    ac_analysis,
    kernel,
    transient,
)
from repro.spice.waveforms import Pulse
from repro.tech import Technology

#: Relative metric tolerance -- the optimization cost function treats
#: metric deviations below ~1% as noise; the backends agree far tighter
#: on most metrics, but adaptive step-acceptance decisions can flip on
#: last-bit differences between LU orderings.
COST_TOL = 1e-2


@contextmanager
def use_solver(name):
    kernel.set_default_solver(name)
    try:
        yield
    finally:
        kernel.set_default_solver(None)


@pytest.fixture(autouse=True)
def _no_env_solver(monkeypatch):
    monkeypatch.delenv(kernel.SOLVER_ENV, raising=False)


def _compare(dense: dict, sparse: dict):
    assert set(sparse) == set(dense)
    for key, ref in dense.items():
        assert sparse[key] == pytest.approx(ref, rel=COST_TOL), key


def test_rc_ladder_waveforms_agree_pointwise(tech):
    """Linear network, fixed stepper: identical step sequence, so the
    backends must agree to solver precision, not just metric tolerance."""
    c = Circuit("ladder")
    c.add_vsource(
        "vin", "n0", "0", Pulse(0.0, 1.0, delay=1e-10, rise=1e-11, width=1.0)
    )
    for k in range(6):
        c.add_resistor(f"r{k}", f"n{k}", f"n{k + 1}", 1e3)
        c.add_capacitor(f"c{k}", f"n{k + 1}", "0", 2e-13)
    cc = CompiledCircuit(c, tech.rules)
    waves = {}
    for backend in ("dense", "sparse"):
        tr = transient(cc, t_stop=5e-9, dt=1e-11, stepper="fixed", solver=backend)
        waves[backend] = tr.v("n6")
    np.testing.assert_allclose(
        waves["sparse"], waves["dense"], rtol=1e-9, atol=1e-12
    )


def test_ac_sweep_agrees_across_backends(tech):
    c = Circuit("rcfilt")
    c.add_vsource("vin", "in", "0", 0.0, ac_magnitude=1.0)
    c.add_resistor("r1", "in", "out", 10e3)
    c.add_capacitor("c1", "out", "0", 1e-12)
    cc = CompiledCircuit(c, tech.rules)
    op = dc_operating_point(cc)
    dense = ac_analysis(cc, op, solver="dense")
    sparse = ac_analysis(cc, op, solver="sparse")
    np.testing.assert_allclose(dense.freqs, sparse.freqs)
    np.testing.assert_allclose(
        sparse.v("out"), dense.v("out"), rtol=1e-9, atol=1e-15
    )


@pytest.fixture(scope="module")
def _tech():
    return Technology.default()


def test_ota_metrics_agree(_tech):
    from repro.circuits import FiveTransistorOta

    ota = FiveTransistorOta(_tech)
    with use_solver("dense"):
        dense = ota.measure(ota.schematic())
    with use_solver("sparse"):
        sparse = ota.measure(ota.schematic())
    _compare(dense, sparse)


def test_strongarm_metrics_agree(_tech):
    from repro.circuits import StrongArmComparator

    comparator = StrongArmComparator(_tech)
    with use_solver("dense"):
        dense = comparator.measure(comparator.schematic(), dt=2e-12)
    with use_solver("sparse"):
        sparse = comparator.measure(comparator.schematic(), dt=2e-12)
    _compare(dense, sparse)


def test_vco_metrics_agree(_tech):
    from repro.circuits import RingOscillatorVco

    vco = RingOscillatorVco(_tech)
    with use_solver("dense"):
        dense = vco.measure(vco.schematic(), periods=6, steps_per_period=150)
    with use_solver("sparse"):
        sparse = vco.measure(vco.schematic(), periods=6, steps_per_period=150)
    _compare(dense, sparse)
