"""The Testbench abstraction."""

import pytest

from repro.errors import SimulationError
from repro.spice import Circuit, Testbench
from repro.spice.testbench import AcSpec, TranSpec
from repro.spice import measure


def rc_circuit():
    c = Circuit("rc")
    c.add_vsource("vin", "in", "0", 0.0, ac_magnitude=1.0)
    c.add_resistor("r1", "in", "out", 1e3)
    c.add_capacitor("c1", "out", "0", 1e-12)
    return c


def test_lazy_analyses_and_caching(tech):
    tb = Testbench(rc_circuit(), tech.rules)
    assert tb.simulation_count == 0
    _ = tb.op
    assert tb.simulation_count == 1
    _ = tb.op  # cached
    assert tb.simulation_count == 1
    _ = tb.ac
    assert tb.simulation_count == 2


def test_measures_share_analyses(tech):
    tb = Testbench(rc_circuit(), tech.rules)
    tb.add_measure("f3db", lambda t: measure.bandwidth_3db(t.ac.freqs, t.ac.v("out")))
    tb.add_measure("gain", lambda t: measure.low_frequency_gain(t.ac.v("out")))
    results = tb.run()
    assert results["gain"] == pytest.approx(1.0, rel=0.01)
    assert tb.simulation_count == 2  # one op + one ac, shared


def test_duplicate_measure_rejected(tech):
    tb = Testbench(rc_circuit(), tech.rules)
    tb.add_measure("a", lambda t: 1.0)
    with pytest.raises(SimulationError):
        tb.add_measure("a", lambda t: 2.0)


def test_tran_requires_spec(tech):
    tb = Testbench(rc_circuit(), tech.rules)
    with pytest.raises(SimulationError):
        _ = tb.tran


def test_tran_with_spec(tech):
    tb = Testbench(
        rc_circuit(), tech.rules, tran_spec=TranSpec(t_stop=1e-9, dt=1e-11)
    )
    result = tb.tran
    assert len(result.t) == 101


def test_invalidate_clears_caches(tech):
    tb = Testbench(rc_circuit(), tech.rules)
    _ = tb.op
    tb.circuit.add_resistor("r2", "out", "0", 1e6)
    tb.invalidate()
    _ = tb.op
    assert tb.simulation_count == 2


def test_custom_ac_spec(tech):
    tb = Testbench(
        rc_circuit(), tech.rules, ac_spec=AcSpec(f_start=1e6, f_stop=1e9,
                                                  points_per_decade=3)
    )
    assert tb.ac.freqs[0] == pytest.approx(1e6)
    assert tb.ac.freqs[-1] == pytest.approx(1e9)
