"""Transient analysis against analytic waveforms."""

import numpy as np
import pytest

from repro.devices.mosfet import MosGeometry
from repro.errors import NetlistError
from repro.spice import Circuit, CompiledCircuit, dc_operating_point, transient
from repro.spice import measure
from repro.spice.waveforms import Pulse, Sin


def test_rc_step_response(tech):
    c = Circuit("rc")
    c.add_vsource("vin", "in", "0", Pulse(0.0, 1.0, delay=1e-9, rise=1e-12, width=1.0))
    c.add_resistor("r1", "in", "out", 1e3)
    c.add_capacitor("c1", "out", "0", 1e-12)  # tau = 1ns
    cc = CompiledCircuit(c, tech.rules)
    tr = transient(cc, t_stop=6e-9, dt=5e-12)
    v = tr.v("out")
    k1 = np.argmin(np.abs(tr.t - 2e-9))  # 1 tau after the step
    k3 = np.argmin(np.abs(tr.t - 4e-9))  # 3 tau
    assert v[k1] == pytest.approx(1 - np.exp(-1), abs=0.01)
    assert v[k3] == pytest.approx(1 - np.exp(-3), abs=0.01)


def test_sinusoid_through_resistor(tech):
    c = Circuit("sin")
    c.add_vsource("vin", "in", "0", Sin(0.0, 1.0, 1e9))
    c.add_resistor("r1", "in", "0", 1e3)
    cc = CompiledCircuit(c, tech.rules)
    tr = transient(cc, t_stop=6e-9, dt=2e-12)
    assert np.max(tr.v("in")) == pytest.approx(1.0, abs=0.01)
    freq = measure.oscillation_frequency(tr.t, tr.v("in"), settle_fraction=0.0)
    assert freq == pytest.approx(1e9, rel=0.02)


def test_lc_oscillation_frequency(tech):
    # An LC tank rung by an initial current through the inductor.
    c = Circuit("lc")
    c.add_isource("ikick", "0", "t", Pulse(1e-3, 0.0, delay=0.0, rise=1e-12, width=1.0))
    c.add_inductor("l1", "t", "0", 1e-9)
    c.add_capacitor("c1", "t", "0", 1e-12)
    c.add_resistor("rl", "t", "0", 10e3)
    cc = CompiledCircuit(c, tech.rules)
    tr = transient(cc, t_stop=4e-9, dt=2e-12)
    # After the kick source drops, the tank rings near f0.
    freq = measure.oscillation_frequency(tr.t, tr.v("t"), settle_fraction=0.3)
    f0 = 1.0 / (2 * np.pi * np.sqrt(1e-9 * 1e-12))
    assert freq == pytest.approx(f0, rel=0.08)


def test_starts_from_dc_operating_point(tech):
    c = Circuit("hold")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    c.add_resistor("r1", "vdd", "out", 1e3)
    c.add_resistor("r2", "out", "0", 1e3)
    c.add_capacitor("c1", "out", "0", 1e-12)
    cc = CompiledCircuit(c, tech.rules)
    tr = transient(cc, t_stop=1e-9, dt=1e-11)
    # No stimulus change: the node stays at its DC value.
    assert np.allclose(tr.v("out"), 0.4, atol=1e-3)


def test_cmos_inverter_switches(tech):
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    c.add_vsource(
        "vin", "in", "0", Pulse(0.0, 0.8, delay=0.1e-9, rise=10e-12, fall=10e-12)
    )
    c.add_mosfet("mp", "out", "in", "vdd", "vdd", tech.pmos, MosGeometry(8, 2, 1))
    c.add_mosfet("mn", "out", "in", "0", "0", tech.nmos, MosGeometry(8, 2, 1))
    c.add_capacitor("cl", "out", "0", 5e-15)
    cc = CompiledCircuit(c, tech.rules)
    tr = transient(cc, t_stop=1e-9, dt=1e-12)
    assert tr.v("out")[0] > 0.75
    assert tr.v("out")[-1] < 0.05
    delay = measure.delay_between(
        tr.t, tr.v("in"), tr.v("out"), 0.4, 0.4, "rise", "fall"
    )
    assert 0 < delay < 0.3e-9


def test_inductor_current_ramp(tech):
    # V = L di/dt: 1V across 1nH ramps 1A/ns.
    c = Circuit("lramp")
    c.add_vsource("v1", "a", "0", Pulse(0.0, 1.0, delay=0.0, rise=1e-12))
    c.add_inductor("l1", "a", "b", 1e-9)
    c.add_resistor("rs", "b", "0", 1e-3)
    cc = CompiledCircuit(c, tech.rules)
    tr = transient(cc, t_stop=1e-9, dt=1e-12)
    assert tr.i("l1")[-1] == pytest.approx(1.0, rel=0.05)


def test_invalid_args_rejected(tech):
    c = Circuit("bad")
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_resistor("r1", "a", "0", 1e3)
    cc = CompiledCircuit(c, tech.rules)
    with pytest.raises(NetlistError):
        transient(cc, t_stop=0.0, dt=1e-12)
    with pytest.raises(NetlistError):
        transient(cc, t_stop=1e-9, dt=2e-9)


def test_vdiff_waveform(tech):
    c = Circuit("d")
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_resistor("r1", "a", "b", 1e3)
    c.add_resistor("r2", "b", "0", 1e3)
    cc = CompiledCircuit(c, tech.rules)
    tr = transient(cc, t_stop=1e-10, dt=1e-11)
    assert np.allclose(tr.vdiff("a", "b"), 0.5, atol=1e-6)


def test_energy_conservation_rc_discharge(tech):
    # A charged capacitor discharging through a resistor: exponential.
    c = Circuit("dis")
    c.add_vsource("vin", "in", "0", Pulse(1.0, 0.0, delay=0.5e-9, rise=1e-12, width=1.0))
    c.add_resistor("r1", "in", "out", 1e3)
    c.add_capacitor("c1", "out", "0", 1e-12)
    cc = CompiledCircuit(c, tech.rules)
    tr = transient(cc, t_stop=4e-9, dt=5e-12)
    k = np.argmin(np.abs(tr.t - 1.5e-9))  # 1 tau after fall
    assert tr.v("out")[k] == pytest.approx(np.exp(-1), abs=0.02)
