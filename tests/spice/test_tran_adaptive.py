"""The LTE-controlled adaptive transient stepper.

ISSUE acceptance: adaptive and fixed stepping agree on measured metrics
within the cost-function tolerance; ``dt`` becomes the output-grid pitch
(results are resampled, so downstream ``measure`` code sees the same
time axis either way); argument validation raises ``NetlistError`` with
actionable messages.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice import Circuit, CompiledCircuit, kernel, measure, transient
from repro.spice import tran as tran_mod
from repro.spice.waveforms import Pulse, Sin


def _rc(tech, tau_s=1e-9):
    c = Circuit("rc")
    c.add_vsource(
        "vin", "in", "0", Pulse(0.0, 1.0, delay=1e-9, rise=1e-12, width=1.0)
    )
    c.add_resistor("r1", "in", "out", 1e3)
    c.add_capacitor("c1", "out", "0", tau_s / 1e3)
    return CompiledCircuit(c, tech.rules)


def _lc(tech):
    c = Circuit("lc")
    c.add_isource(
        "ikick", "0", "t", Pulse(1e-3, 0.0, delay=0.0, rise=1e-12, width=1.0)
    )
    c.add_inductor("l1", "t", "0", 1e-9)
    c.add_capacitor("c1", "t", "0", 1e-12)
    c.add_resistor("rl", "t", "0", 10e3)
    return CompiledCircuit(c, tech.rules)


# -- stepper resolution and validation -----------------------------------


def test_stepper_resolution(monkeypatch):
    monkeypatch.delenv(tran_mod.STEPPER_ENV, raising=False)
    assert tran_mod.resolve_stepper() == tran_mod.ADAPTIVE
    assert tran_mod.resolve_stepper("fixed") == tran_mod.FIXED
    monkeypatch.setenv(tran_mod.STEPPER_ENV, "fixed")
    assert tran_mod.resolve_stepper() == tran_mod.FIXED
    assert tran_mod.resolve_stepper("adaptive") == tran_mod.ADAPTIVE


def test_invalid_stepper_rejected(tech, monkeypatch):
    cc = _rc(tech)
    with pytest.raises(NetlistError, match="stepper"):
        transient(cc, t_stop=1e-9, dt=1e-11, stepper="rk45")
    monkeypatch.setenv(tran_mod.STEPPER_ENV, "euler")
    with pytest.raises(NetlistError, match=tran_mod.STEPPER_ENV):
        transient(cc, t_stop=1e-9, dt=1e-11)


def test_dt_max_validation(tech):
    cc = _rc(tech)
    with pytest.raises(NetlistError, match="dt_max"):
        transient(cc, t_stop=1e-9, dt=1e-11, dt_max=1e-12)
    # dt_max == dt is the default and always legal.
    tr = transient(cc, t_stop=1e-10, dt=1e-11, dt_max=1e-11)
    assert len(tr.t) == 11


@pytest.mark.parametrize("field", ["lte_rtol", "lte_atol"])
@pytest.mark.parametrize("bad", [0.0, -1e-3, float("nan")])
def test_lte_tolerance_validation(tech, field, bad):
    cc = _rc(tech)
    with pytest.raises(NetlistError, match=field):
        transient(cc, t_stop=1e-9, dt=1e-11, **{field: bad})


# -- output grid ---------------------------------------------------------


def test_adaptive_output_grid_matches_fixed(tech):
    cc = _rc(tech)
    adaptive = transient(cc, t_stop=6e-9, dt=5e-12, stepper="adaptive")
    fixed = transient(cc, t_stop=6e-9, dt=5e-12, stepper="fixed")
    np.testing.assert_allclose(adaptive.t, fixed.t, rtol=0, atol=0)
    assert adaptive.solutions.shape == fixed.solutions.shape


# -- adaptive vs fixed agreement -----------------------------------------


def test_rc_step_response_agrees(tech):
    cc = _rc(tech)
    waves = {
        name: transient(cc, t_stop=6e-9, dt=5e-12, stepper=name).v("out")
        for name in ("adaptive", "fixed")
    }
    assert np.max(np.abs(waves["adaptive"] - waves["fixed"])) < 5e-3


def test_lc_frequency_agrees(tech):
    cc = _lc(tech)
    freqs = {}
    for name in ("adaptive", "fixed"):
        tr = transient(cc, t_stop=4e-9, dt=2e-12, stepper=name)
        freqs[name] = measure.oscillation_frequency(
            tr.t, tr.v("t"), settle_fraction=0.3
        )
    assert freqs["adaptive"] == pytest.approx(freqs["fixed"], rel=1e-2)


def test_sinusoid_amplitude_agrees(tech):
    c = Circuit("sin")
    c.add_vsource("vin", "in", "0", Sin(0.0, 1.0, 1e9))
    c.add_resistor("r1", "in", "mid", 1e3)
    c.add_capacitor("c1", "mid", "0", 1e-13)
    cc = CompiledCircuit(c, tech.rules)
    amps = {}
    for name in ("adaptive", "fixed"):
        tr = transient(cc, t_stop=6e-9, dt=2e-12, stepper=name)
        amps[name] = np.max(tr.v("mid")) - np.min(tr.v("mid"))
    assert amps["adaptive"] == pytest.approx(amps["fixed"], rel=1e-2)


# -- controller behavior -------------------------------------------------


def test_tight_tolerance_refines_below_the_output_grid(tech):
    """With a deliberately coarse grid and tight LTE tolerances the
    controller must take more internal steps than the grid has points —
    and land closer to the analytic answer than the fixed run."""
    cc = _rc(tech)
    stats_a, stats_f = kernel.SolverStats(), kernel.SolverStats()
    with kernel.collect(stats_a):
        adaptive = transient(
            cc,
            t_stop=6e-9,
            dt=2e-10,
            stepper="adaptive",
            lte_rtol=1e-4,
            lte_atol=1e-5,
        )
    with kernel.collect(stats_f):
        fixed = transient(cc, t_stop=6e-9, dt=2e-10, stepper="fixed")
    assert stats_a.tran_steps > stats_f.tran_steps
    assert stats_a.tran_fixed_steps == 30  # round(6e-9 / 2e-10)
    exact = np.where(
        adaptive.t > 1e-9, 1.0 - np.exp(-(adaptive.t - 1e-9) / 1e-9), 0.0
    )
    err_adaptive = np.max(np.abs(adaptive.v("out") - exact))
    err_fixed = np.max(np.abs(fixed.v("out") - exact))
    assert err_adaptive < err_fixed


def test_dt_max_allows_growth_past_the_grid(tech):
    """A quiescent network with ``dt_max > dt`` takes fewer internal
    steps than grid points — step doubling through the flat region."""
    c = Circuit("hold")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    c.add_resistor("r1", "vdd", "out", 1e3)
    c.add_resistor("r2", "out", "0", 1e3)
    c.add_capacitor("c1", "out", "0", 1e-12)
    cc = CompiledCircuit(c, tech.rules)
    stats = kernel.SolverStats()
    with kernel.collect(stats):
        tr = transient(
            cc, t_stop=2e-8, dt=1e-11, stepper="adaptive", dt_max=1e-9
        )
    assert stats.tran_steps < stats.tran_fixed_steps
    assert len(tr.t) == 2001  # the output grid is still dt-pitched
    np.testing.assert_allclose(tr.v("out"), 0.4, atol=1e-6)


def test_linear_circuit_reuses_factorizations(tech):
    """MOSFET-free networks at a repeated step size answer from the
    cached LU instead of refactoring every step."""
    cc = _rc(tech)
    stats = kernel.SolverStats()
    with kernel.collect(stats):
        transient(cc, t_stop=6e-9, dt=5e-12, stepper="fixed")
    assert stats.lu_reuses > 0
    assert stats.factorizations < stats.solves
