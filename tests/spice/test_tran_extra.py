"""Additional transient scenarios: stiffness, halving, MOS dynamics."""

import numpy as np
import pytest

from repro.devices.mosfet import MosGeometry
from repro.spice import Circuit, CompiledCircuit, transient
from repro.spice import measure
from repro.spice.waveforms import Pulse, Sin


def test_stiff_fast_edge_coarse_steps(tech):
    """A 1 ps edge sampled at 50 ps steps still integrates stably."""
    c = Circuit("stiff")
    c.add_vsource("vin", "in", "0", Pulse(0.0, 1.0, delay=1e-10, rise=1e-12,
                                          width=1.0))
    c.add_resistor("r", "in", "out", 100.0)
    c.add_capacitor("cl", "out", "0", 1e-14)  # tau = 1 ps << dt
    cc = CompiledCircuit(c, tech.rules)
    tr = transient(cc, t_stop=2e-9, dt=5e-11)
    assert np.all(np.isfinite(tr.solutions))
    assert tr.v("out")[-1] == pytest.approx(1.0, abs=0.01)


def test_ring_oscillator_three_inverters(tech):
    """A 3-stage single-ended CMOS ring oscillates without any kick."""
    c = Circuit("ring3")
    c.add_vsource("vdd", "vdd", "0", 0.8)
    g = MosGeometry(8, 2, 1)
    for k in range(3):
        inp, out = f"n{k}", f"n{(k + 1) % 3}"
        c.add_mosfet(f"mp{k}", out, inp, "vdd", "vdd", tech.pmos, g)
        c.add_mosfet(f"mn{k}", out, inp, "0", "0", tech.nmos, g)
        c.add_capacitor(f"cl{k}", out, "0", 2e-15)
    cc = CompiledCircuit(c, tech.rules)
    from repro.spice.dc import dc_operating_point

    # Kick one node off the metastable point.
    op = dc_operating_point(cc, force={"n0": 0.8})
    tr = transient(cc, t_stop=3e-9, dt=2e-12, op=op)
    freq = measure.oscillation_frequency(tr.t, tr.v("n1"), settle_fraction=0.3)
    assert 1e9 < freq < 1e11


def test_ac_and_tran_agree_on_rc_pole(tech):
    """The transient step response time constant matches the AC pole."""
    from repro.spice import ac_analysis, dc_operating_point

    r_val, c_val = 2e3, 0.5e-12
    c = Circuit("agree")
    c.add_vsource("vin", "in", "0", Pulse(0.0, 1.0, delay=0.2e-9, rise=1e-12,
                                          width=1.0), ac_magnitude=1.0)
    c.add_resistor("r", "in", "out", r_val)
    c.add_capacitor("cl", "out", "0", c_val)
    cc = CompiledCircuit(c, tech.rules)
    op = dc_operating_point(cc)
    ac = ac_analysis(cc, op, 1e6, 1e12, 20)
    f3db = measure.bandwidth_3db(ac.freqs, ac.v("out"))

    tr = transient(cc, t_stop=8e-9, dt=2e-12, op=op)
    # 10-90% rise time of a single pole: 2.2 tau = 2.2/(2 pi f3db).
    rise = measure.delay_between(
        tr.t, tr.v("out"), tr.v("out"), 0.1, 0.9
    )
    assert rise == pytest.approx(2.2 / (2 * np.pi * f3db), rel=0.05)


def test_sinusoidal_steady_state_amplitude(tech):
    """Transient amplitude through an RC matches the AC magnitude."""
    from repro.spice import ac_analysis, dc_operating_point

    f0 = 1.0e9
    c = Circuit("ss")
    c.add_vsource("vin", "in", "0", Sin(0.0, 1.0, f0), ac_magnitude=1.0)
    c.add_resistor("r", "in", "out", 1e3)
    c.add_capacitor("cl", "out", "0", 0.3e-12)
    cc = CompiledCircuit(c, tech.rules)
    op = dc_operating_point(cc)
    ac = ac_analysis(cc, op, 1e8, 1e10, 40)
    k = int(np.argmin(np.abs(ac.freqs - f0)))
    expected = abs(ac.v("out")[k])

    tr = transient(cc, t_stop=10 / f0, dt=1 / (400 * f0), op=op)
    steady = tr.v("out")[len(tr.t) // 2 :]
    amplitude = (np.max(steady) - np.min(steady)) / 2
    assert amplitude == pytest.approx(expected, rel=0.03)
