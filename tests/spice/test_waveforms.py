"""Source waveforms."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError
from repro.spice.waveforms import Dc, Pulse, Pwl, Sin


def test_dc_constant():
    w = Dc(1.5)
    assert w.dc_value == 1.5
    assert w.value(0.0) == w.value(1e-3) == 1.5


def test_pulse_levels():
    p = Pulse(v1=0.0, v2=1.0, delay=1e-9, rise=1e-10, fall=1e-10, width=1e-9)
    assert p.dc_value == 0.0
    assert p.value(0.0) == 0.0
    assert p.value(1.05e-9) == pytest.approx(0.5)  # mid-rise
    assert p.value(1.5e-9) == 1.0  # flat top
    assert p.value(2.15e-9) == pytest.approx(0.5)  # mid-fall
    assert p.value(5e-9) == 0.0


def test_pulse_periodic():
    p = Pulse(0.0, 1.0, delay=0.0, rise=1e-12, fall=1e-12, width=0.5e-9, period=1e-9)
    assert p.value(0.25e-9) == 1.0
    assert p.value(1.25e-9) == 1.0
    assert p.value(0.75e-9) == 0.0


def test_pulse_validation():
    with pytest.raises(NetlistError):
        Pulse(0.0, 1.0, rise=0.0)


def test_sin_basic():
    s = Sin(offset=0.5, amplitude=0.1, frequency=1e9)
    assert s.dc_value == 0.5
    assert s.value(0.25e-9) == pytest.approx(0.6)
    assert s.value(0.75e-9) == pytest.approx(0.4)


def test_sin_delay_holds_offset():
    s = Sin(offset=0.3, amplitude=0.2, frequency=1e9, delay=1e-9)
    assert s.value(0.5e-9) == 0.3


def test_sin_damping_decays():
    s = Sin(offset=0.0, amplitude=1.0, frequency=1e9, damping=1e9)
    assert abs(s.value(2.25e-9)) < abs(s.value(0.25e-9))


def test_sin_validation():
    with pytest.raises(NetlistError):
        Sin(0.0, 1.0, frequency=0.0)


def test_pwl_interpolation():
    w = Pwl(points=((0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)))
    assert w.value(-1.0) == 0.0
    assert w.value(0.5e-9) == pytest.approx(0.5)
    assert w.value(1.5e-9) == pytest.approx(0.75)
    assert w.value(5e-9) == 0.5


def test_pwl_validation():
    with pytest.raises(NetlistError):
        Pwl(points=())
    with pytest.raises(NetlistError):
        Pwl(points=((0.0, 0.0), (0.0, 1.0)))


@given(st.floats(min_value=0.0, max_value=1e-6))
def test_pulse_always_within_levels(t):
    p = Pulse(0.2, 0.9, delay=1e-9, rise=1e-10, fall=2e-10, width=3e-9, period=8e-9)
    assert 0.2 <= p.value(t) <= 0.9


@given(st.floats(min_value=0.0, max_value=1e-6))
def test_pwl_within_extremes(t):
    w = Pwl(points=((0.0, -1.0), (1e-7, 2.0), (2e-7, 0.5)))
    assert -1.0 <= w.value(t) <= 2.0
