"""The persistent surrogate corpus: forgiving loads, batched writes."""

from __future__ import annotations

import json

from repro.surrogate import CorpusRow, CorpusStore, FEATURES_VERSION


def _row(key="k1", family="Fam:8:abcd1234", stage="sel", cost=2.5):
    return CorpusRow(
        family=family, stage=stage, key=key, features=(1.0, 2.0), cost=cost
    )


def test_record_flush_load_roundtrip(tmp_path):
    path = tmp_path / "corpus.jsonl"
    store = CorpusStore(path)
    assert store.record(_row("a"))
    assert store.record(_row("b", stage="tune"))
    assert store.flush() == 2
    assert store.flush() == 0  # pending drained

    loaded = CorpusStore(path)
    assert len(loaded) == 2
    assert [r.key for r in loaded.rows("Fam:8:abcd1234", "sel")] == ["a"]
    assert [r.key for r in loaded.rows("Fam:8:abcd1234", "tune")] == ["b"]


def test_duplicate_keys_keep_first(tmp_path):
    path = tmp_path / "corpus.jsonl"
    store = CorpusStore(path)
    assert store.record(_row("a", cost=1.0))
    assert not store.record(_row("a", cost=9.0))  # replay: ignored
    store.flush()
    loaded = CorpusStore(path)
    rows = loaded.rows("Fam:8:abcd1234", "sel")
    assert [r.cost for r in rows] == [1.0]


def test_torn_and_foreign_lines_are_skipped(tmp_path):
    path = tmp_path / "corpus.jsonl"
    good = _row("good").to_dict()
    stale = dict(good, key="stale", version=FEATURES_VERSION - 1)
    path.write_text(
        json.dumps(good) + "\n"
        + json.dumps(stale) + "\n"
        + "{\"family\": \"torn tail\n"
        + "not json at all\n"
        + json.dumps(dict(good, key="inf", cost=float("inf"))).replace(
            "Infinity", "1e999"
        ) + "\n"
    )
    store = CorpusStore(path)
    assert [r.key for r in store.rows("Fam:8:abcd1234", "sel")] == ["good"]
    assert store.skipped_lines == 4


def test_unflushed_rows_never_touch_disk(tmp_path):
    path = tmp_path / "corpus.jsonl"
    store = CorpusStore(path)
    store.record(_row("a"))
    # A killed run never reaches flush(): the file must not exist.
    assert not path.exists()
    assert store.stats()["pending"] == 1


def test_in_memory_store_records_without_persisting():
    store = CorpusStore(None)
    assert store.record(_row("a"))
    assert store.flush() == 0
    assert store.stats()["path"] is None
    assert len(store) == 1


def test_stats_and_export_are_deterministic(tmp_path):
    path = tmp_path / "corpus.jsonl"
    store = CorpusStore(path)
    store.record(_row("b", family="Zed:4:ffffffff"))
    store.record(_row("a"))
    store.record(_row("c", stage="tune"))
    store.flush()
    loaded = CorpusStore(path)
    stats = loaded.stats()
    assert stats["rows"] == 3
    assert stats["families"] == {"Fam:8:abcd1234": 2, "Zed:4:ffffffff": 1}
    exported = loaded.export_rows()
    assert [r["key"] for r in exported] == ["a", "c", "b"]
    assert all(r["version"] == FEATURES_VERSION for r in exported)
    # Export order is independent of record order.
    assert exported == CorpusStore(path).export_rows()
