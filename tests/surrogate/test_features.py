"""Simulation-free surrogate features: deterministic and well-shaped."""

from __future__ import annotations

import pytest

from repro.cellgen.generator import WireConfig
from repro.devices.mosfet import MosGeometry
from repro.errors import LayoutError
from repro.surrogate import FEATURE_NAMES, family_key, option_features
from repro.surrogate.features import pattern_features, wire_features


def test_pattern_features_separate_abab_from_abba():
    abab = pattern_features("ABAB")
    abba = pattern_features("ABBA")
    assert abab != abba
    # length, distinct, adjacent-equal, alternations, palindrome
    assert abab == [4.0, 2.0, 0.0, 3.0, 0.0]
    assert abba == [4.0, 2.0, 1.0, 2.0, 1.0]


def test_wire_features_summarize_straps():
    wires = WireConfig().with_straps("tail", 3).with_straps("out", 1)
    total, peak, nets, dummies = wire_features(wires)
    assert (total, peak, nets) == (4.0, 3.0, 2.0)
    assert dummies in (0.0, 1.0)


def test_option_features_deterministic_and_named(small_dp):
    base = MosGeometry(8, 4, 3)
    a = option_features(small_dp, base, "ABAB", WireConfig())
    b = option_features(small_dp, base, "ABAB", WireConfig())
    assert a == b
    assert len(a) == len(FEATURE_NAMES)
    assert all(isinstance(x, float) for x in a)
    # Geometry features are real, positive dimensions.
    named = dict(zip(FEATURE_NAMES, a))
    assert named["layout_width_um"] > 0
    assert named["layout_height_um"] > 0
    assert named["layout_area_um2"] == pytest.approx(
        named["layout_width_um"] * named["layout_height_um"]
    )


def test_option_features_reuses_provided_layout(small_dp):
    base = MosGeometry(8, 4, 3)
    layout = small_dp.generate(base, "ABAB", WireConfig(), verify=False)
    direct = option_features(small_dp, base, "ABAB", WireConfig(), layout=layout)
    generated = option_features(small_dp, base, "ABAB", WireConfig())
    assert direct == generated


def test_option_features_raise_for_infeasible_candidates(small_dp):
    # A pattern referencing more devices than the sizing provides must
    # surface as LayoutError (the guide treats such candidates as
    # unprunable), never as a silent feature vector.
    with pytest.raises(LayoutError):
        option_features(
            small_dp, MosGeometry(8, 1, 1), "ABABABAB", WireConfig()
        )


def test_family_key_stable_and_weight_sensitive(small_dp):
    plain = family_key(small_dp, None)
    again = family_key(small_dp, None)
    weighted = family_key(small_dp, {"area": 2.0})
    assert plain == again
    assert plain != weighted
    prefix = f"{type(small_dp).__qualname__}:{small_dp.base_fins}:"
    assert plain.startswith(prefix)
    assert weighted.startswith(prefix)
