"""SurrogateGuide decisions: deterministic, journal-first, fail-safe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.surrogate import (
    CorpusRow,
    SelectionCandidate,
    SurrogateGuide,
    resolve_surrogate,
)

FAMILY = "Fam:8:abcd1234"


def _seed_corpus(guide, stage, n=24, slope=1.0):
    """Teach the guide that cost == slope * feature[0]."""
    for i in range(n):
        x = float(i)
        guide.store.record(
            CorpusRow(
                family=FAMILY,
                stage=stage,
                key=f"seed:{stage}:{i}",
                features=(x, float(i % 3)),
                cost=slope * x,
            )
        )


def _candidates(n=10):
    return [
        SelectionCandidate(
            index=i,
            key=f"cand:{i:02d}",
            features=[float(i), 0.0],
            bin_index=i % 2,
        )
        for i in range(n)
    ]


# -- resolve_surrogate ---------------------------------------------------


def test_resolve_surrogate_flag_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_SURROGATE", "1")
    assert resolve_surrogate(False) is False
    monkeypatch.setenv("REPRO_SURROGATE", "0")
    assert resolve_surrogate(True) is True


def test_resolve_surrogate_env_spellings(monkeypatch):
    monkeypatch.delenv("REPRO_SURROGATE", raising=False)
    assert resolve_surrogate(None) is False
    for off in ("", "0", "false", "No", "OFF"):
        monkeypatch.setenv("REPRO_SURROGATE", off)
        assert resolve_surrogate(None) is False
    for on in ("1", "true", "yes"):
        monkeypatch.setenv("REPRO_SURROGATE", on)
        assert resolve_surrogate(None) is True


# -- readiness and fallbacks ---------------------------------------------


def test_empty_corpus_never_prunes():
    guide = SurrogateGuide(None)
    assert not guide.ready(FAMILY, "sel")
    keep, prune = guide.prune_selection(FAMILY, _candidates())
    assert keep == set(range(10))
    assert prune == set()
    assert guide.stats.fallbacks["corpus-too-small"] == 1


def test_high_variance_falls_back():
    guide = SurrogateGuide(None, variance_ceiling=-1.0)
    _seed_corpus(guide, "sel")
    keep, prune = guide.prune_selection(FAMILY, _candidates())
    assert keep == set(range(10))
    assert prune == set()
    assert guide.stats.fallbacks["high-variance"] == 1


def test_featureless_candidates_are_never_pruned():
    guide = SurrogateGuide(None, explore=0)
    _seed_corpus(guide, "sel")
    cands = _candidates()
    cands[7].features = None  # layout generation failed
    keep, _ = guide.prune_selection(FAMILY, cands)
    assert 7 in keep


# -- selection pruning ---------------------------------------------------


def test_prune_selection_keeps_topk_and_bins_and_is_deterministic():
    guide = SurrogateGuide(None, top_k=3, explore=0)
    _seed_corpus(guide, "sel")
    keep, prune = guide.prune_selection(FAMILY, _candidates())
    # Predicted cost rises with the index: the cheapest three stay, plus
    # nothing extra for bins (indices 0 and 1 already cover both bins).
    assert keep == {0, 1, 2}
    assert prune == set(range(3, 10))
    again = SurrogateGuide(None, top_k=3, explore=0)
    _seed_corpus(again, "sel")
    assert again.prune_selection(FAMILY, _candidates()) == (keep, prune)


def test_prune_selection_keeps_best_of_every_bin():
    guide = SurrogateGuide(None, top_k=2, explore=0)
    _seed_corpus(guide, "sel")
    cands = _candidates()
    for c in cands:
        c.bin_index = 0 if c.index < 8 else 1
    keep, _ = guide.prune_selection(FAMILY, cands)
    # Bin 1 only contains expensive candidates; its predicted best
    # (index 8) survives anyway so the bin stays winnable.
    assert {0, 1, 8} <= keep
    assert 9 not in keep


def test_exploration_is_seeded_by_candidate_keys():
    def run():
        guide = SurrogateGuide(None, top_k=2, explore=2)
        _seed_corpus(guide, "sel")
        keep, prune = guide.prune_selection(FAMILY, _candidates(12))
        return keep, prune

    first, second = run(), run()
    assert first == second
    keep, _ = first
    # top-2 + both bin winners within top-2's bins + 2 exploration picks
    assert len(keep) > 2


def test_journal_decisions_override_the_model():
    guide = SurrogateGuide(None, top_k=2, explore=0)
    _seed_corpus(guide, "sel")
    cands = _candidates()
    cands[9].journaled = "done"    # replay is free: stays kept
    cands[0].journaled = "pruned"  # prior run pruned it: stays pruned
    keep, prune = guide.prune_selection(FAMILY, cands)
    assert 9 in keep
    assert 0 in prune


# -- tuning prefix -------------------------------------------------------


def test_plan_prefix_truncates_at_predicted_minimum():
    guide = SurrogateGuide(None, explore=0)
    # cost curve: minimum at wire count 3 (feature index 2).
    for i, cost in enumerate([5.0, 3.0, 1.0, 2.0, 4.0, 6.0, 8.0, 9.0] * 3):
        guide.store.record(
            CorpusRow(
                family=FAMILY, stage="tune", key=f"t:{i}",
                features=(float(i % 8), 0.0), cost=cost,
            )
        )
    features = [[float(i), 0.0] for i in range(8)]
    keep = guide.plan_prefix(FAMILY, features, limit=8)
    assert keep == 4  # argmin=2, +2 margin, explore=0
    assert guide.stats.tune_pruned == 4


def test_plan_prefix_full_limit_without_model_or_features():
    guide = SurrogateGuide(None)
    assert guide.plan_prefix(FAMILY, [[1.0]] * 8, limit=8) == 8
    assert guide.stats.fallbacks["corpus-too-small"] == 1
    # Models are cached per (family, stage) from the corpus as loaded at
    # run start, so the missing-features path needs a fresh guide.
    warm = SurrogateGuide(None)
    _seed_corpus(warm, "tune")
    assert warm.plan_prefix(FAMILY, [[1.0, 0.0], None], limit=2) == 2
    assert warm.stats.fallbacks["missing-features"] == 1
    assert warm.plan_prefix(FAMILY, [[1.0]], limit=1) == 1  # trivial sweep


# -- recording -----------------------------------------------------------


def test_record_skips_unusable_examples():
    guide = SurrogateGuide(None)
    guide.record(FAMILY, "sel", "a", None, 1.0)
    guide.record(FAMILY, "sel", "b", [1.0], float("inf"))
    guide.record(FAMILY, "sel", "c", [1.0], float("nan"))
    assert guide.stats.recorded == 0
    guide.record(FAMILY, "sel", "d", [1.0], 1.0)
    guide.record(FAMILY, "sel", "d", [1.0], 1.0)  # replay: deduped
    assert guide.stats.recorded == 1


def test_stats_dict_shape():
    guide = SurrogateGuide(None)
    stats = guide.stats.as_dict()
    assert list(stats) == [
        "models_trained", "predictions", "sel_kept", "sel_pruned",
        "tune_pruned", "recorded", "fallbacks",
    ]
    assert stats["fallbacks"] == {}
    assert np.isfinite(list(stats.values())[0])
