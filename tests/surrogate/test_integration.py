"""End-to-end surrogate acceptance.

ISSUE acceptance, verified here:

* surrogate-on runs journal byte-identically for any ``--jobs`` /
  ``--batch`` value (pruning is decided before dispatch);
* surrogate-off runs journal byte-identically to the pre-surrogate
  baseline — including a cold surrogate-on run, which must fall back to
  the full sweep;
* a warm corpus cuts simulations substantially while the chosen
  best-variant cost stays exactly the baseline's (pruning may only skip
  losers, never change winners);
* resumed runs honor journaled pruning decisions.

The warm-corpus fixture runs one full recording pass and is shared
module-wide; every pruned run works on its own *copy* of that corpus so
run-boundary flushes cannot leak between tests.
"""

from __future__ import annotations

import shutil

import pytest

from repro import PrimitiveOptimizer, Technology
from repro.runtime import RetryPolicy

FINS = 48


def _fresh_dp(name="sg_dp"):
    from repro.primitives import DifferentialPair

    return DifferentialPair(Technology.default(), base_fins=FINS, name=name)


def _optimizer(run_dir, corpus, jobs=1, batch=1, surrogate=True,
               resume=False):
    # cache=False keeps simulation counts honest: every elided
    # evaluation below is elided by *pruning*, not by a content-cache
    # hit.
    return PrimitiveOptimizer(
        n_bins=2,
        max_wires=3,
        policy=RetryPolicy(max_retries=2),
        run_dir=run_dir,
        resume=resume,
        jobs=jobs,
        cache=False,
        batch=batch,
        surrogate=surrogate,
        surrogate_corpus=corpus,
    )


def _fingerprint(report) -> tuple:
    return (
        [(o.describe(), o.cost) for o in report.options],
        [(o.describe(), o.cost) for o in report.selected],
        [(t.option.describe(), t.option.cost) for t in report.tuned],
        report.best.cost,
        [f.to_dict() for f in report.failures.failures],
    )


@pytest.fixture(scope="module")
def warm(tmp_path_factory):
    """(corpus path, cold-pass report): one recording pass, shared."""
    base = tmp_path_factory.mktemp("surrogate_warm")
    corpus = base / "corpus.jsonl"
    report = _optimizer(base / "seed_run", corpus).optimize(_fresh_dp())
    assert corpus.exists()
    return corpus, report


def test_cold_corpus_falls_back_and_records(warm):
    _, report = warm
    stats = report.surrogate_stats
    assert stats["sel_pruned"] == 0
    assert stats["tune_pruned"] == 0
    assert stats["recorded"] > 0
    assert "corpus-too-small" in stats["fallbacks"]


def test_cold_surrogate_run_is_byte_identical_to_off(warm, tmp_path):
    corpus, cold_report = warm
    off = _optimizer(tmp_path / "off", None, surrogate=False).optimize(
        _fresh_dp()
    )
    assert _fingerprint(off) == _fingerprint(cold_report)
    off_journal = (tmp_path / "off" / "sg_dp.jsonl").read_bytes()
    cold_journal = (corpus.parent / "seed_run" / "sg_dp.jsonl").read_bytes()
    assert off_journal == cold_journal
    assert b'"pruned"' not in off_journal


def test_warm_corpus_prunes_without_moving_the_chosen_cost(warm, tmp_path):
    corpus, cold_report = warm
    corpus_copy = tmp_path / "corpus.jsonl"
    shutil.copy(corpus, corpus_copy)
    report = _optimizer(tmp_path / "run", corpus_copy).optimize(_fresh_dp())
    stats = report.surrogate_stats
    assert stats["models_trained"] >= 1
    assert stats["sel_pruned"] > 0
    # The point of the exercise: far fewer simulations...
    assert report.total_simulations <= 0.7 * cold_report.total_simulations
    # ...and the *exact* same winner (pruning only skips losers).
    assert report.best.cost == cold_report.best.cost


def test_surrogate_on_journal_identical_across_jobs_and_batch(
    warm, tmp_path
):
    corpus, _ = warm
    journals = {}
    fingerprints = {}
    for label, kwargs in (
        ("serial", dict(jobs=1, batch=1)),
        ("jobs2", dict(jobs=2, batch=1)),
        ("batch4", dict(jobs=1, batch=4)),
    ):
        corpus_copy = tmp_path / f"{label}.jsonl"
        shutil.copy(corpus, corpus_copy)
        run_dir = tmp_path / label
        report = _optimizer(run_dir, corpus_copy, **kwargs).optimize(
            _fresh_dp()
        )
        journals[label] = (run_dir / "sg_dp.jsonl").read_bytes()
        fingerprints[label] = _fingerprint(report)
    assert journals["jobs2"] == journals["serial"]
    assert journals["batch4"] == journals["serial"]
    assert fingerprints["jobs2"] == fingerprints["serial"]
    assert fingerprints["batch4"] == fingerprints["serial"]
    assert b'"pruned"' in journals["serial"]


def test_surrogate_off_ignores_env(tmp_path, monkeypatch):
    # REPRO_SURROGATE=1 (the CI tier-1 matrix) must not leak into runs
    # that pass an explicit --no-surrogate.
    monkeypatch.setenv("REPRO_SURROGATE", "1")
    opt = _optimizer(tmp_path / "off", None, surrogate=False)
    assert opt.guide is None
    monkeypatch.delenv("REPRO_SURROGATE")
    assert _optimizer(tmp_path / "o2", None, surrogate=None).guide is None


def test_resume_replays_pruning_decisions(warm, tmp_path):
    corpus, _ = warm

    def pristine(label):
        copy = tmp_path / f"{label}.jsonl"
        shutil.copy(corpus, copy)
        return copy

    baseline = _optimizer(tmp_path / "full", pristine("full")).optimize(
        _fresh_dp()
    )

    run_dir = tmp_path / "killed"
    _optimizer(run_dir, pristine("killed")).optimize(_fresh_dp())
    journal = run_dir / "sg_dp.jsonl"
    lines = journal.read_text().splitlines(keepends=True)
    assert len(lines) > 4
    journal.write_text("".join(lines[: len(lines) // 2]))

    # The resumed run sees the *original* corpus (a killed run never
    # flushes), so model decisions and journaled decisions agree.
    resumed = _optimizer(
        run_dir, pristine("resume"), resume=True
    ).optimize(_fresh_dp())
    assert _fingerprint(resumed) == _fingerprint(baseline)
    assert resumed.cached_evaluations > 0
    assert resumed.surrogate_stats["sel_pruned"] > 0
    # The repaired journal converges to the uninterrupted run's bytes:
    # the remade plan matches, so only the lost suffix is re-appended.
    assert journal.read_bytes() == (
        tmp_path / "full" / "sg_dp.jsonl"
    ).read_bytes()


@pytest.mark.parametrize("name,fins", [
    ("differential_pair", 24),
    ("current_mirror", 24),
])
def test_library_cost_bound(tmp_path, name, fins):
    """Library-wide bound: a warm surrogate never worsens the chosen
    cost — pass 2 must land on exactly the cold pass's winner."""
    from repro.primitives import PrimitiveLibrary

    library = PrimitiveLibrary()

    def prim():
        return library.create(name, Technology.default(), base_fins=fins)

    corpus = tmp_path / "corpus.jsonl"
    cold = _optimizer(tmp_path / "cold", corpus).optimize(prim())
    hot = _optimizer(tmp_path / "hot", corpus).optimize(prim())
    assert hot.best.cost == cold.best.cost
    assert hot.total_simulations <= cold.total_simulations
