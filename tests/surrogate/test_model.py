"""The deterministic stump ensemble: reproducible fits, useful ranks."""

from __future__ import annotations

import numpy as np

from repro.surrogate import StumpEnsemble, stable_seed


def _synthetic(n=60):
    """A deterministic regression set: cost = f(two of four features)."""
    rng = np.random.default_rng(7)
    X = rng.uniform(0.0, 10.0, size=(n, 4))
    y = 3.0 * X[:, 0] - 2.0 * X[:, 2] + 0.1 * rng.standard_normal(n)
    return X, y


def test_stable_seed_is_pure():
    assert stable_seed("surrogate", "fam", "sel") == stable_seed(
        "surrogate", "fam", "sel"
    )
    assert stable_seed("surrogate", "fam", "sel") != stable_seed(
        "surrogate", "fam", "tune"
    )


def test_fit_predict_deterministic():
    X, y = _synthetic()
    a = StumpEnsemble(seed=11).fit(X, y)
    b = StumpEnsemble(seed=11).fit(X, y)
    mean_a, spread_a = a.predict(X)
    mean_b, spread_b = b.predict(X)
    assert np.array_equal(mean_a, mean_b)
    assert np.array_equal(spread_a, spread_b)


def test_seed_changes_bootstraps_not_contract():
    X, y = _synthetic()
    a, _ = StumpEnsemble(seed=1).fit(X, y).predict(X)
    b, _ = StumpEnsemble(seed=2).fit(X, y).predict(X)
    # Different bootstraps, same signal: both fits still track y.
    assert np.corrcoef(a, y)[0, 1] > 0.95
    assert np.corrcoef(b, y)[0, 1] > 0.95


def test_ranking_tracks_true_cost():
    X, y = _synthetic()
    model = StumpEnsemble(seed=3).fit(X, y)
    mean, _ = model.predict(X)
    # The predicted-cheapest decile must live in the true cheap half:
    # ranking quality is the whole job of this model.
    predicted_best = np.argsort(mean)[: len(y) // 10]
    true_median = np.median(y)
    assert all(y[i] < true_median for i in predicted_best)


def test_disagreement_grows_on_noise():
    rng = np.random.default_rng(5)
    X = rng.uniform(0.0, 10.0, size=(60, 4))
    structured = 3.0 * X[:, 0]
    noise = rng.standard_normal(60) * 10.0
    _, tight = StumpEnsemble(seed=9).fit(X, structured).predict(X)
    _, loose = StumpEnsemble(seed=9).fit(X, noise).predict(X)
    assert float(tight.mean()) < float(loose.mean())


def test_constant_features_degenerate_gracefully():
    X = np.ones((8, 3))
    y = np.arange(8.0)
    mean, spread = StumpEnsemble(seed=0).fit(X, y).predict(X)
    # Nothing to split on: every prediction is a (bootstrap) mean.
    assert np.all(np.isfinite(mean))
    assert np.all(np.isfinite(spread))
