"""Model cards and LDE coefficient models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TechnologyError
from repro.tech.finfet import (
    LdeCoefficients,
    MosModelCard,
    default_nmos,
    default_pmos,
)


def test_default_cards_polarity():
    assert default_nmos().is_nmos
    assert not default_pmos().is_nmos


def test_card_validation_polarity():
    card = default_nmos()
    with pytest.raises(TechnologyError):
        MosModelCard(
            name="x", polarity=0, vth0=0.3, slope_factor=1.1, kp=1e-4,
            lambda_clm=0.1, vsat_field=0.5, cox_area=0.03, cov_per_fin=1e-17,
            cj_per_fin=1e-17, cj_shared_factor=0.5, sigma_vth_fin=0.03,
            lde=card.lde,
        )


def test_card_validation_shared_factor():
    card = default_nmos()
    with pytest.raises(TechnologyError):
        MosModelCard(
            name="x", polarity=1, vth0=0.3, slope_factor=1.1, kp=1e-4,
            lambda_clm=0.1, vsat_field=0.5, cox_area=0.03, cov_per_fin=1e-17,
            cj_per_fin=1e-17, cj_shared_factor=1.5, sigma_vth_fin=0.03,
            lde=card.lde,
        )


def test_lod_shift_zero_at_reference():
    lde = LdeCoefficients()
    assert lde.lod_vth_shift(lde.sa_ref, lde.sa_ref) == pytest.approx(0.0)


def test_lod_shift_positive_for_short_diffusion():
    lde = LdeCoefficients()
    # Edges closer than the reference raise the threshold.
    assert lde.lod_vth_shift(100.0, 100.0) > 0


def test_lod_mobility_degrades_for_short_diffusion():
    lde = LdeCoefficients()
    assert lde.lod_mobility_factor(50.0, 50.0) < 1.0
    assert lde.lod_mobility_factor(lde.sa_ref, lde.sa_ref) == pytest.approx(1.0)


def test_lod_mobility_floor():
    lde = LdeCoefficients(kmu_lod=1e6)
    assert lde.lod_mobility_factor(1.0, 1.0) == 0.5


@given(st.floats(min_value=10.0, max_value=1e5))
def test_lod_shift_monotone_in_distance(sa):
    lde = LdeCoefficients()
    # Farther edges always shift less.
    assert lde.lod_vth_shift(sa, sa) >= lde.lod_vth_shift(sa * 2, sa * 2)


def test_wpe_shift_zero_at_reference():
    lde = LdeCoefficients()
    assert lde.wpe_vth_shift(lde.sc_ref) == pytest.approx(0.0)


def test_wpe_shift_sign():
    lde = LdeCoefficients()
    assert lde.wpe_vth_shift(100.0) > 0
    assert lde.wpe_vth_shift(1e6) < 0


def test_lde_rejects_nonpositive_distances():
    lde = LdeCoefficients()
    with pytest.raises(TechnologyError):
        lde.lod_vth_shift(0.0, 100.0)
    with pytest.raises(TechnologyError):
        lde.wpe_vth_shift(-5.0)


def test_zeroed_lde_for_ablation():
    lde = LdeCoefficients(kvth_lod=0.0, kmu_lod=0.0, kvth_wpe=0.0)
    assert lde.lod_vth_shift(10.0, 10.0) == 0.0
    assert lde.lod_mobility_factor(10.0, 10.0) == 1.0
    assert lde.wpe_vth_shift(10.0) == 0.0
