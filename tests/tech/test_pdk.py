"""The Technology bundle."""

import pytest

from repro.errors import TechnologyError
from repro.tech import Technology


def test_default_technology(tech):
    assert tech.name == "FF14"
    assert tech.vdd == pytest.approx(0.8)
    assert tech.stack.num_metals == 6


def test_card_lookup(tech):
    assert tech.card("n") is tech.nmos
    assert tech.card("nmos") is tech.nmos
    assert tech.card("p") is tech.pmos
    assert tech.card("PMOS") is tech.pmos


def test_card_lookup_unknown(tech):
    with pytest.raises(TechnologyError):
        tech.card("cmos")


def test_device_metal_and_routing_metals_exist(tech):
    tech.stack.metal(tech.device_metal)
    for name in tech.routing_metals:
        tech.stack.metal(name)


def test_without_lde_zeroes_coefficients():
    t = Technology.without_lde()
    assert t.nmos.lde.kvth_lod == 0.0
    assert t.pmos.lde.kvth_wpe == 0.0
    assert t.name == "FF14-noLDE"


def test_without_lde_keeps_gradients():
    # The ablation removes LOD/WPE but keeps the process gradient.
    t = Technology.without_lde()
    assert t.vth_gradient_x == Technology.default().vth_gradient_x


def test_gradients_positive(tech):
    assert tech.vth_gradient_x > 0
    assert tech.vth_gradient_y > 0


def test_bad_vdd_rejected():
    t = Technology.default()
    with pytest.raises(TechnologyError):
        Technology(
            name="bad", rules=t.rules, stack=t.stack,
            nmos=t.nmos, pmos=t.pmos, vdd=0.0,
        )


def test_stack_resistances_calibrated_for_global_routes(tech):
    """A 2um M3 route (the paper's port-opt case) sits in the hundreds
    of ohms at double width — the regime where parallel routes matter."""
    m3 = tech.stack.metal("M3")
    r = m3.wire_resistance(2000, 2 * m3.min_width)
    assert 50.0 < r < 500.0


def test_contact_resistance_per_fin_reasonable(tech):
    # Tens of ohms per fin contact; a 960-fin device sees < 0.1 ohm.
    assert 20.0 < tech.contact_resistance < 500.0
    assert tech.contact_resistance / 960 < 0.5
