"""Design rules: pitches, footprints, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TechnologyError
from repro.tech import DesignRules


@pytest.fixture(scope="module")
def rules():
    return DesignRules()


def test_default_values_sane(rules):
    assert rules.fin_pitch == 48
    assert rules.gate_length < rules.poly_pitch


def test_fin_width_effective(rules):
    assert rules.fin_width_effective == 2 * rules.fin_height + rules.fin_thickness


def test_device_width_paper_example(rules):
    # The paper's W/L = 46um/14nm DP side corresponds to 960 fins.
    assert rules.device_width(8, 20, 6) == 960 * 48


@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=8),
)
def test_device_width_multiplicative(nfin, nf, m):
    rules = DesignRules()
    assert rules.device_width(nfin, nf, m) == nfin * nf * m * rules.fin_pitch


def test_device_width_rejects_zero(rules):
    with pytest.raises(TechnologyError):
        rules.device_width(0, 1, 1)


def test_finger_footprint(rules):
    base = rules.finger_footprint(10)
    assert base == 10 * rules.poly_pitch + 2 * rules.diffusion_extension


def test_finger_footprint_dummies_wider(rules):
    assert rules.finger_footprint(10, with_dummies=True) > rules.finger_footprint(10)


def test_row_footprint_monotone(rules):
    assert rules.row_footprint(16) > rules.row_footprint(8)


def test_row_footprint_rejects_zero(rules):
    with pytest.raises(TechnologyError):
        rules.row_footprint(0)


def test_gate_length_vs_poly_pitch_validation():
    with pytest.raises(TechnologyError):
        DesignRules(gate_length=100, poly_pitch=90)


def test_negative_pitch_rejected():
    with pytest.raises(TechnologyError):
        DesignRules(fin_pitch=0)


def test_negative_dummies_rejected():
    with pytest.raises(TechnologyError):
        DesignRules(dummy_fingers=-1)
