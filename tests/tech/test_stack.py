"""Metal stack: layer lookup, wire RC, via stacks."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TechnologyError
from repro.tech import MetalLayer, MetalStack, Technology, ViaLayer


@pytest.fixture(scope="module")
def stack():
    return Technology.default().stack


def test_six_metals(stack):
    assert stack.num_metals == 6
    assert [m.name for m in stack.metals] == ["M1", "M2", "M3", "M4", "M5", "M6"]


def test_lower_metals_more_resistive(stack):
    sheets = [stack.metal_by_index(i).sheet_res for i in range(1, 7)]
    assert sheets == sorted(sheets, reverse=True)


def test_metal_lookup_by_name_and_index(stack):
    assert stack.metal("M3") is stack.metal_by_index(3)


def test_unknown_metal_raises(stack):
    with pytest.raises(TechnologyError):
        stack.metal("M9")
    with pytest.raises(TechnologyError):
        stack.metal_by_index(0)


def test_wire_resistance_formula(stack):
    m1 = stack.metal("M1")
    # R = rho * L / W for a 10um x min-width wire.
    assert m1.wire_resistance(10_000) == pytest.approx(
        m1.sheet_res * 10_000 / m1.min_width
    )


def test_wire_resistance_scales_inverse_width(stack):
    m2 = stack.metal("M2")
    assert m2.wire_resistance(5000, 64) == pytest.approx(
        m2.wire_resistance(5000, 32) / 2.0
    )


def test_wire_capacitance_positive_and_monotone(stack):
    m3 = stack.metal("M3")
    c1 = m3.wire_capacitance(1000)
    c2 = m3.wire_capacitance(2000)
    assert 0 < c1 < c2
    assert c2 == pytest.approx(2 * c1)


def test_wire_capacitance_grows_with_width(stack):
    m3 = stack.metal("M3")
    assert m3.wire_capacitance(1000, 80) > m3.wire_capacitance(1000, 40)


@given(st.integers(min_value=1, max_value=100_000))
def test_wire_rc_positive(length):
    stack = Technology.default().stack
    for metal in stack.metals:
        assert metal.wire_resistance(length) >= 0
        assert metal.wire_capacitance(length) >= 0


def test_negative_length_rejected(stack):
    with pytest.raises(TechnologyError):
        stack.metal("M1").wire_resistance(-1)


def test_zero_width_rejected(stack):
    with pytest.raises(TechnologyError):
        stack.metal("M1").wire_capacitance(100, 0)


def test_via_between_either_order(stack):
    v = stack.via_between("M1", "M2")
    assert v is stack.via_between("M2", "M1")
    assert v.name == "V1"


def test_missing_via_raises(stack):
    with pytest.raises(TechnologyError):
        stack.via_between("M1", "M3")


def test_via_array_resistance(stack):
    v1 = stack.via_between("M1", "M2")
    assert v1.array_resistance(4) == pytest.approx(v1.resistance / 4)
    with pytest.raises(TechnologyError):
        v1.array_resistance(0)


def test_via_stack_resistance_accumulates(stack):
    r13 = stack.via_stack_resistance("M1", "M3")
    r12 = stack.via_between("M1", "M2").resistance
    r23 = stack.via_between("M2", "M3").resistance
    assert r13 == pytest.approx(r12 + r23)


def test_via_stack_symmetric(stack):
    assert stack.via_stack_resistance("M1", "M5") == pytest.approx(
        stack.via_stack_resistance("M5", "M1")
    )


def test_via_stack_same_layer_zero(stack):
    assert stack.via_stack_resistance("M3", "M3") == 0.0


def test_via_stack_parallel_cuts(stack):
    assert stack.via_stack_resistance("M1", "M3", cuts=2) == pytest.approx(
        stack.via_stack_resistance("M1", "M3") / 2
    )


def test_invalid_layer_direction():
    with pytest.raises(TechnologyError):
        MetalLayer("MX", 1, "d", 32, 64, 10.0, 1e-5, 1e-11)


def test_inverted_width_pitch():
    with pytest.raises(TechnologyError):
        MetalLayer("MX", 1, "h", 64, 32, 10.0, 1e-5, 1e-11)


def test_duplicate_layer_names_rejected():
    layer = MetalLayer("M1", 1, "h", 32, 64, 10.0, 1e-5, 1e-11)
    layer2 = MetalLayer("M1", 2, "v", 32, 64, 10.0, 1e-5, 1e-11)
    with pytest.raises(TechnologyError):
        MetalStack(metals=[layer, layer2])


def test_via_unknown_metal_rejected():
    layer = MetalLayer("M1", 1, "h", 32, 64, 10.0, 1e-5, 1e-11)
    via = ViaLayer("V9", "M1", "M9", 10.0, 1e-17, 32)
    with pytest.raises(TechnologyError):
        MetalStack(metals=[layer], vias=[via])
