"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "differential_pair" in out
    assert "ota" in out


def test_optimize_command(capsys):
    assert main(["optimize", "current_source", "--fins", "48",
                 "--bins", "2", "--max-wires", "3"]) == 0
    out = capsys.readouterr().out
    assert "simulations" in out
    assert "cost" in out


def test_flow_command(capsys):
    assert main(["flow", "csamp", "--flavor", "conventional"]) == 0
    out = capsys.readouterr().out
    assert "gain_db" in out


def test_render_command(tmp_path, capsys):
    assert main(
        ["render", "diode_load", "--fins", "48", "--outdir", str(tmp_path)]
    ) == 0
    svgs = list(tmp_path.glob("*.svg"))
    sps = list(tmp_path.glob("*.sp"))
    assert len(svgs) == 1
    assert len(sps) == 1
    assert svgs[0].read_text().startswith("<svg")


def test_unknown_circuit_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["flow", "nonexistent"])


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])
