"""The determinism-hazard self-lint (`tools/devlint.py`).

`tools/` is not a package, so the module is loaded straight from its
file path — the same way `make devlint` runs it.
"""

from __future__ import annotations

import importlib.util
import sys
import textwrap
from pathlib import Path

_TOOLS = Path(__file__).parents[1] / "tools" / "devlint.py"
_spec = importlib.util.spec_from_file_location("devlint", _TOOLS)
assert _spec is not None and _spec.loader is not None
devlint = importlib.util.module_from_spec(_spec)
# dataclasses resolves the module through sys.modules at class-creation
# time, so the module must be registered before executing it.
sys.modules["devlint"] = devlint
_spec.loader.exec_module(devlint)


def _lint(source: str, path: str = "mod.py"):
    return devlint.lint_source(textwrap.dedent(source), path)


def test_module_level_random_call_is_flagged():
    findings = _lint(
        """
        import random

        def pick(items):
            return random.choice(items)
        """
    )
    assert [f.code for f in findings] == ["DEV-RANDOM"]
    assert "random.choice" in findings[0].message


def test_from_import_random_is_flagged():
    findings = _lint(
        """
        from random import shuffle

        def scramble(items):
            shuffle(items)
        """
    )
    assert [f.code for f in findings] == ["DEV-RANDOM"]


def test_seeded_rng_instance_is_fine():
    findings = _lint(
        """
        import random

        def pick(items, seed):
            rng = random.Random(seed)
            return rng.choice(items)
        """
    )
    assert findings == []


def test_wallclock_flagged_only_in_cache_scope():
    hazardous = """
        import time

        def make_cache_key(payload):
            return (payload, time.time())
        """
    benign = """
        import time

        def measure(fn):
            start = time.time()
            fn()
            return time.time() - start
        """
    assert [f.code for f in _lint(hazardous)] == ["DEV-WALLCLOCK"]
    assert _lint(benign) == []


def test_wallclock_scope_includes_module_name():
    source = """
        import time

        def stamp():
            return time.time_ns()
        """
    assert [f.code for f in _lint(source, "journal.py")] == ["DEV-WALLCLOCK"]
    assert _lint(source, "profiler.py") == []


def test_datetime_now_in_checkpoint_path_is_flagged():
    findings = _lint(
        """
        import datetime

        def write_checkpoint(state):
            return (state, datetime.now())
        """
    )
    assert [f.code for f in findings] == ["DEV-WALLCLOCK"]


def test_non_call_time_reference_is_fine():
    findings = _lint(
        """
        import time

        def cache_clock():
            return time.time
        """
    )
    assert findings == []


def test_set_iteration_is_flagged():
    findings = _lint(
        """
        def names(items):
            for item in {"b", "a"}:
                print(item)
            return [x for x in set(items)]
        """
    )
    assert [f.code for f in findings] == ["DEV-SET-ORDER", "DEV-SET-ORDER"]


def test_sorted_set_iteration_is_fine():
    findings = _lint(
        """
        def names(items):
            return [x for x in sorted(set(items))]
        """
    )
    assert findings == []


def test_suppression_comment_silences_one_line():
    findings = _lint(
        """
        import random

        def pick(items):
            return random.choice(items)  # devlint: ok
        """
    )
    assert findings == []


def test_findings_sort_deterministically(tmp_path):
    (tmp_path / "b.py").write_text(
        "import random\nrandom.random()\n"
    )
    (tmp_path / "a.py").write_text(
        "for x in {1, 2}:\n    pass\n"
    )
    findings = devlint.lint_paths([tmp_path])
    assert [Path(f.path).name for f in findings] == ["a.py", "b.py"]
    rendered = findings[0].render()
    assert rendered.startswith(str(tmp_path / "a.py") + ":1: DEV-SET-ORDER")


def test_main_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nrandom.random()\n")
    assert devlint.main([str(dirty)]) == 1
    assert "1 finding(s)" in capsys.readouterr().out
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert devlint.main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_repository_sources_are_clean():
    root = Path(__file__).parents[1]
    findings = devlint.lint_paths([root / "src" / "repro", root / "tools"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_batch_loop_solve_is_flagged():
    findings = _lint(
        """
        import numpy as np

        def solve_members_batch(systems):
            out = []
            for lhs, rhs in systems:
                out.append(np.linalg.solve(lhs, rhs))
            return out
        """
    )
    assert [f.code for f in findings] == ["DEV-BATCH-SOLVE"]
    assert "stacked" in findings[0].message


def test_batch_module_while_loop_solve_is_flagged():
    findings = _lint(
        """
        import numpy as np

        def drain(queue):
            while queue:
                lhs, rhs = queue.pop()
                numpy.linalg.solve(lhs, rhs)
        """,
        path="src/repro/runtime/batched.py",
    )
    assert [f.code for f in findings] == ["DEV-BATCH-SOLVE"]


def test_solve_outside_batch_scope_is_fine():
    findings = _lint(
        """
        import numpy as np

        def newton_step(systems):
            for lhs, rhs in systems:
                np.linalg.solve(lhs, rhs)
        """
    )
    assert findings == []


def test_stacked_solve_outside_loop_is_fine():
    findings = _lint(
        """
        import numpy as np

        def solve_batch(lhs, rhs):
            return np.linalg.solve(lhs, rhs[..., None])[..., 0]
        """
    )
    assert findings == []


def test_nested_def_in_batch_loop_is_fine():
    findings = _lint(
        """
        import numpy as np

        def dispatch_batch(members):
            thunks = []
            for lhs, rhs in members:
                def thunk(lhs=lhs, rhs=rhs):
                    return np.linalg.solve(lhs, rhs)
                thunks.append(thunk)
            return thunks
        """
    )
    assert findings == []


def test_batch_loop_solve_suppressible():
    findings = _lint(
        """
        import numpy as np

        def rescue_batch(members):
            for lhs, rhs in members:
                np.linalg.solve(lhs, rhs)  # devlint: ok
        """
    )
    assert findings == []


def test_surrogate_prediction_into_journal_is_flagged():
    findings = _lint(
        """
        def persist(journal, key, predicted_cost):
            journal.record_success(key, {"cost": predicted_cost})
        """
    )
    assert [f.code for f in findings] == ["DEV-SURROGATE-LEAK"]
    assert "measured simulation results" in findings[0].message


def test_surrogate_prediction_into_cache_put_is_flagged():
    findings = _lint(
        """
        def store(cache, key, guide, rows):
            cache.put(key, guide.predict(rows), 0)
        """
    )
    assert [f.code for f in findings] == ["DEV-SURROGATE-LEAK"]


def test_surrogate_prediction_bound_to_cost_keyword_is_flagged():
    findings = _lint(
        """
        def report(point_cls, count, surrogate_estimate):
            return point_cls(count, cost=surrogate_estimate, values={})
        """
    )
    assert [f.code for f in findings] == ["DEV-SURROGATE-LEAK"]


def test_surrogate_pruning_and_measured_values_are_fine():
    findings = _lint(
        """
        def plan(journal, cache, key, candidate, predicted_rank):
            if predicted_rank > 4:
                journal.record_pruned(key)
            else:
                journal.record_success(key, {"cost": candidate.cost})
                cache.put(key, candidate.values, candidate.simulations)
        """
    )
    assert findings == []


def test_surrogate_leak_suppressible():
    findings = _lint(
        """
        def debug_dump(journal, key, predicted):
            journal.record_success(key, {"cost": predicted})  # devlint: ok
        """
    )
    assert findings == []
