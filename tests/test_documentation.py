"""Documentation coverage: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if "__main__" not in name
]


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-exports documented at their origin
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = [
        name for name, obj in public_members(module) if not inspect.getdoc(obj)
    ]
    assert not undocumented, f"{module_name}: missing docstrings: {undocumented}"


def test_package_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None
