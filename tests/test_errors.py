"""Error hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.TechnologyError,
    errors.NetlistError,
    errors.SimulationError,
    errors.ConvergenceError,
    errors.LayoutError,
    errors.DesignRuleError,
    errors.ExtractionError,
    errors.OptimizationError,
    errors.PlacementError,
    errors.RoutingError,
    errors.MeasureError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_convergence_is_simulation_error():
    assert issubclass(errors.ConvergenceError, errors.SimulationError)


def test_measure_is_simulation_error():
    assert issubclass(errors.MeasureError, errors.SimulationError)


def test_design_rule_is_layout_error():
    assert issubclass(errors.DesignRuleError, errors.LayoutError)


def test_catch_all_at_flow_boundary():
    with pytest.raises(errors.ReproError):
        raise errors.RoutingError("no path")
