"""Table formatting helpers."""

import pytest

from repro.reporting import format_metric, format_table, percent


def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [["a", 1.0], ["longer", 123.456]],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    # All rows have the same width.
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_format_table_float_formatting():
    text = format_table(["x"], [[123.456789]])
    assert "123.5" in text


def test_format_metric():
    assert format_metric(4.8e9, "Hz") == "4.8 GHz"


def test_percent():
    assert percent(2.0, 1.9) == pytest.approx(5.0)
    assert percent(0.0, 0.0) == 0.0
    assert percent(0.0, 1.0) == float("inf")
