"""Units and formatting helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_nm_roundtrip():
    assert units.nm(1e-6) == 1000
    assert units.meters(1000) == pytest.approx(1e-6)


def test_um_conversion():
    assert units.um(2500) == pytest.approx(2.5)
    assert units.nm_from_um(2.5) == 2500


@given(st.floats(min_value=1e-9, max_value=1.0, allow_nan=False))
def test_nm_meters_inverse(x):
    # Exact up to the 0.5 nm quantization of the integer grid (plus a
    # hair of floating-point slack at the exact midpoint).
    assert units.meters(units.nm(x)) == pytest.approx(x, abs=0.501e-9)


def test_thermal_voltage_room_temperature():
    assert 0.025 < units.THERMAL_VOLTAGE < 0.027


def test_si_format_prefixes():
    assert units.si_format(1.96e-3, "A/V") == "1.96 mA/V"
    assert units.si_format(6.7e9, "Hz") == "6.7 GHz"
    assert units.si_format(50.4e-15, "F") == "50.4 fF"


def test_si_format_zero_and_nan():
    assert units.si_format(0.0, "V") == "0 V"
    assert "nan" in units.si_format(float("nan"), "V")


@given(st.floats(min_value=1e-17, max_value=1e13, allow_nan=False))
def test_si_format_mantissa_in_range(value):
    text = units.si_format(value)
    mantissa = float(text.split()[0]) if " " in text else float(text)
    assert 0.99 <= abs(mantissa) < 1001.0


def test_si_format_negative():
    assert units.si_format(-3.3e-6, "A") == "-3.3 uA"
