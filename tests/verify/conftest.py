"""Fixtures for the static-verification tests.

One small differential pair is generated once per session; seeded-
violation tests copy it before corrupting it.
"""

from __future__ import annotations

import copy

import pytest

from repro.primitives import DifferentialPair


@pytest.fixture(scope="session")
def dp_primitive(tech):
    return DifferentialPair(tech, base_fins=96, name="vdp")


@pytest.fixture(scope="session")
def dp_base(dp_primitive):
    return dp_primitive.variants()[0]


@pytest.fixture(scope="session")
def dp_spec(dp_primitive, dp_base):
    return dp_primitive.cell_spec(dp_base)


@pytest.fixture(scope="session")
def _dp_layout(dp_primitive, dp_base):
    return dp_primitive.generate(dp_base, "ABAB", verify=False)


@pytest.fixture
def dp_layout(_dp_layout):
    """A fresh, mutable copy of the clean differential-pair layout."""
    return copy.deepcopy(_dp_layout)
