"""Seeded-violation tests for the antenna / density audit (ANT-*, DEN-*)."""

from __future__ import annotations

import pytest

from repro.verify.antenna import gate_areas, run_antenna
from repro.verify.tech import AuditTech, LayerAudit


@pytest.fixture
def audit(tech):
    return AuditTech.for_technology(tech)


def test_clean_layout_passes_default_limits(dp_layout, tech):
    report = run_antenna(dp_layout, tech)
    assert report.ok
    assert not report.violations


def test_gate_areas_recovered_from_stub_owners(dp_layout, tech, audit):
    areas = gate_areas(dp_layout, tech, audit)
    # Only the two gate nets collect gate area, and symmetrically so:
    # 96 fins x fin_pitch x gate_length each.
    expected = 96 * tech.rules.fin_pitch * audit.gate_length_nm
    assert areas == {"inp": pytest.approx(expected),
                     "inn": pytest.approx(expected)}


def test_ant_ratio_on_tight_limit(dp_layout, tech, audit):
    report = run_antenna(
        dp_layout, tech, audit.with_overrides(antenna_max_ratio=1.0)
    )
    assert report.count("ANT-RATIO") >= 1
    # Only nets that reach a gate can damage one.
    assert {v.subject for v in report.violations} <= {"inp", "inn"}
    assert not report.ok


def test_ant_ratio_ignores_gateless_nets(dp_layout, tech, audit):
    # outp/outn/tail carry plenty of metal but connect no gate, so even
    # an absurdly tight ratio never flags them.
    report = run_antenna(
        dp_layout, tech, audit.with_overrides(antenna_max_ratio=1e-9)
    )
    flagged = {v.subject for v in report.violations}
    assert "outp" not in flagged and "tail" not in flagged


def test_den_window_max_on_tight_ceiling(dp_layout, tech, audit):
    layers = dict(audit.layers)
    layers["M1"] = LayerAudit(
        em_limit_ma_um=1.0, max_density=0.0005, min_density=0.0
    )
    report = run_antenna(
        dp_layout, tech, audit.with_overrides(layers=layers)
    )
    assert report.count("DEN-WINDOW-MAX") >= 1
    flagged = [v for v in report.violations if v.rule == "DEN-WINDOW-MAX"]
    assert all(v.subject == "M1" and v.is_error for v in flagged)


def test_den_window_min_is_one_warning_per_layer(dp_layout, tech, audit):
    layers = dict(audit.layers)
    layers["M3"] = LayerAudit(
        em_limit_ma_um=1.5, max_density=1.0, min_density=0.9
    )
    report = run_antenna(
        dp_layout, tech, audit.with_overrides(layers=layers)
    )
    # Sparse-but-used metal is a tapeout fill concern, not a design
    # error: exactly one warning per layer, never one per window.
    assert report.count("DEN-WINDOW-MIN") == 1
    (finding,) = [v for v in report.violations if v.rule == "DEN-WINDOW-MIN"]
    assert finding.subject == "M3"
    assert not finding.is_error
    assert report.ok  # warnings do not fail the audit


def test_density_skips_layers_without_limits(dp_layout, tech, audit):
    # A layer absent from the audit table is not density-checked.
    layers = {"M2": audit.layers["M2"]}
    report = run_antenna(
        dp_layout, tech, audit.with_overrides(layers=layers)
    )
    assert {v.subject for v in report.violations} <= {"M2"}


def test_empty_layout_is_clean(tech):
    from repro.geometry.layout import Layout

    report = run_antenna(Layout(name="empty"), tech)
    assert report.ok and not report.violations
