"""The audit through the CLI: flags, default-on wiring, determinism."""

from __future__ import annotations

import json

from repro.cli import main

_TARGET = ["verify", "differential_pair", "--fins", "96",
           "--variants", "1"]


def test_cli_audit_flags_parse_and_disable(capsys):
    assert main(_TARGET + ["--no-emag", "--no-antenna",
                           "--no-symmetry-geo"]) == 0
    out = capsys.readouterr().out
    assert "error(s)" in out or "CLEAN" in out


def test_cli_audit_default_on_counts_audit_shapes(capsys):
    # The audit re-counts every wire and via, so disabling it must
    # strictly shrink the checked-shape tally for the same target.
    assert main(_TARGET + ["--format", "json"]) == 0
    with_audit = json.loads(capsys.readouterr().out)
    assert main(_TARGET + ["--format", "json", "--no-emag",
                           "--no-antenna", "--no-symmetry-geo"]) == 0
    without_audit = json.loads(capsys.readouterr().out)
    assert sum(d["checked_shapes"] for d in with_audit) > sum(
        d["checked_shapes"] for d in without_audit
    )


def test_cli_audit_json_is_byte_deterministic(capsys):
    assert main(_TARGET + ["--format", "json"]) == 0
    first = capsys.readouterr().out
    assert main(_TARGET + ["--format", "json"]) == 0
    second = capsys.readouterr().out
    assert first == second
    assert json.loads(first)  # and it is well-formed JSON
