"""Seeded-violation tests for the static EM / IR-drop audit (EM-*, IR-*)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import VerificationError
from repro.geometry.layout import Wire
from repro.geometry.shapes import Rect
from repro.pnr.detailed import DetailedRoute
from repro.verify.emag import (
    budget_net_currents,
    check_route_currents,
    run_emag,
)
from repro.verify.tech import AuditTech, LayerAudit


@pytest.fixture
def audit(tech):
    return AuditTech.for_technology(tech)


def test_clean_layout_passes_at_budget_currents(dp_layout, tech):
    report = run_emag(dp_layout, tech)
    assert report.ok
    assert not report.violations


def test_budget_currents_follow_device_fins(dp_layout, audit):
    currents = budget_net_currents(dp_layout, audit)
    # Both branch drains carry one branch's budget; the shared source
    # net carries both.
    assert currents["outp"] == currents["outn"] > 0.0
    assert currents["tail"] == pytest.approx(
        currents["outp"] + currents["outn"]
    )
    # 2 devices x 6 units x (4 fins x 4 fingers) at the declared budget.
    assert currents["tail"] == pytest.approx(
        2 * 6 * 4 * 4 * audit.current_per_fin_a
    )
    # Gate nets carry no DC current, so they never enter the budget.
    assert "inp" not in currents
    assert "inn" not in currents


def test_em_wire_density_on_overdriven_net(dp_layout, tech):
    # 50 mA through the outp mesh swamps the thin-metal limits.
    report = run_emag(dp_layout, tech, currents={"outp": 0.05})
    assert report.count("EM-WIRE-DENSITY") >= 1
    assert all(
        v.subject == "outp"
        for v in report.violations
        if v.rule == "EM-WIRE-DENSITY"
    )
    assert not report.ok


def test_em_via_density_on_overdriven_ladder(dp_layout, tech):
    report = run_emag(dp_layout, tech, currents={"outp": 0.05})
    assert report.count("EM-VIA-DENSITY") >= 1
    messages = [
        v.message for v in report.violations if v.rule == "EM-VIA-DENSITY"
    ]
    assert any("per cut" in m for m in messages)


def test_ir_drop_on_supply_mesh(dp_layout, tech):
    # Recast the tail net as a supply: the same mesh now owes the IR
    # budget, and 50 mA through it drops far more than 5% of vdd.
    dp_layout.wires = [
        replace(w, net="vss!") if w.net == "tail" else w
        for w in dp_layout.wires
    ]
    dp_layout.vias = [
        replace(v, net="vss!") if v.net == "tail" else v
        for v in dp_layout.vias
    ]
    report = run_emag(dp_layout, tech, currents={"vss!": 0.05})
    assert report.count("IR-DROP") == 1
    (finding,) = [v for v in report.violations if v.rule == "IR-DROP"]
    assert finding.subject == "vss!"
    assert "rail" in finding.message  # the path breakdown is reported


def test_ir_drop_silent_on_signal_nets(dp_layout, tech):
    # The same overload on a non-supply net is EM territory, not IR.
    report = run_emag(dp_layout, tech, currents={"tail": 0.05})
    assert report.count("IR-DROP") == 0


def test_operating_point_currents_override_budget(dp_layout, tech):
    class _Op:
        def net_currents(self):
            return {"outp": 0.05}

    report = run_emag(dp_layout, tech, op=_Op())
    assert report.count("EM-WIRE-DENSITY") >= 1


def test_explicit_currents_override_op(dp_layout, tech):
    class _Op:
        def net_currents(self):  # pragma: no cover - must not be used
            raise AssertionError("explicit currents must win")

    report = run_emag(dp_layout, tech, op=_Op(), currents={})
    assert report.ok


def test_route_capacity_is_min_over_bundle():
    route = DetailedRoute(
        net="out",
        wires=[
            Wire("out", "M2", Rect(0, 0, 10000, 32)),
            Wire("out", "M3", Rect(0, 0, 10000, 40)),
        ],
        n_parallel=2,
    )
    # M2: 2 x 32 nm x 1.2 mA/um; the wider M3 wire is not the bottleneck.
    assert route.current_capacity_ma({"M2": 1.2, "M3": 1.5}) == pytest.approx(
        2 * 32 * 1e-3 * 1.2
    )
    # Layers absent from the table are skipped entirely.
    assert route.current_capacity_ma({}) == float("inf")


def test_em_route_density_on_undersized_route(tech):
    route = DetailedRoute(
        net="out", wires=[Wire("out", "M2", Rect(0, 0, 10000, 32))]
    )
    report = check_route_currents({"out": route}, {"out": 0.001}, tech)
    assert report.count("EM-ROUTE-DENSITY") == 1
    (finding,) = report.violations
    assert "needs >=" in finding.message


def test_em_route_density_silent_within_capacity(tech):
    route = DetailedRoute(
        net="out", wires=[Wire("out", "M2", Rect(0, 0, 10000, 32))]
    )
    # 0.0384 mA capacity at the 1.2 mA/um M2 limit.
    report = check_route_currents({"out": route}, {"out": 3e-5}, tech)
    assert report.ok


def test_audit_tech_rejects_bad_tables(tech):
    with pytest.raises(VerificationError):
        LayerAudit(em_limit_ma_um=0.0)
    with pytest.raises(VerificationError):
        LayerAudit(em_limit_ma_um=1.0, max_density=0.2, min_density=0.5)
    with pytest.raises(VerificationError):
        AuditTech.for_technology(tech, ir_drop_frac=2.0)


def test_audit_tech_defaults_scale_with_stack(tech, audit):
    # Thin lower metal sustains ~1 mA/um; thick top metal far more.
    m2 = audit.layer("M2")
    top = audit.layer(tech.stack.metals[-1].name)
    assert m2 is not None and top is not None
    assert m2.em_limit_ma_um < top.em_limit_ma_um
    assert audit.via_limit("V1") is not None
    assert audit.layer("M99") is None and audit.via_limit("V99") is None
