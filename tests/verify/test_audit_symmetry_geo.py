"""Seeded-violation tests for the geometric symmetry audit (SYMG-*).

Each test copies the clean differential pair, breaks exactly one aspect
of its mirror realization and asserts the matching rule fires — and
that the clean layout stays clean.
"""

from __future__ import annotations

from dataclasses import replace

from repro.geometry.layout import Via, Wire
from repro.geometry.shapes import Point, Rect
from repro.verify.symmetry_geo import run_symmetry_geo


def test_clean_layout_has_no_symg_findings(dp_layout, dp_spec, tech):
    report = run_symmetry_geo(dp_layout, dp_spec, tech)
    assert report.ok
    assert not report.violations
    assert report.checked_shapes == len(dp_layout.devices)


def test_non_mirror_pattern_is_not_audited(dp_layout, dp_spec, tech):
    # Corrupt a placement, then declare a pattern that promises no
    # mirror: the audit must not punish it.
    dev = dp_layout.devices[0]
    dp_layout.devices[0] = replace(dev, rect=dev.rect.translated(500, 0))
    dp_layout.metadata["pattern"] = "AABB"
    report = run_symmetry_geo(dp_layout, dp_spec, tech)
    assert not report.violations


def test_symg_place_on_off_mirror_unit(dp_layout, dp_spec, tech):
    # Shrink one MB unit from the left: its center moves 10 nm off the
    # mirror image of its MA partner while the row extent (and so the
    # detected axis) stays put.
    for i, dev in enumerate(dp_layout.devices):
        if dev.device == "MB":
            r = dev.rect
            dp_layout.devices[i] = replace(
                dev, rect=Rect(r.x0 + 20, r.y0, r.x1, r.y1)
            )
            break
    report = run_symmetry_geo(dp_layout, dp_spec, tech)
    assert report.count("SYMG-PLACE") == 1
    assert not report.ok


def test_symg_axis_on_staggered_row(dp_layout, dp_spec, tech):
    # Shift every unit of one row sideways: the row's internal mirror
    # survives (the axis moves with it) but the cell-wide axes disagree.
    y0 = min(dev.rect.y0 for dev in dp_layout.devices)
    for i, dev in enumerate(dp_layout.devices):
        if dev.rect.y0 == y0:
            dp_layout.devices[i] = replace(
                dev, rect=dev.rect.translated(8, 0)
            )
    report = run_symmetry_geo(dp_layout, dp_spec, tech)
    assert report.count("SYMG-AXIS") == 1
    assert report.count("SYMG-PLACE") == 0


def test_symg_orient_on_inconsistent_flip(dp_layout, dp_spec, tech):
    # Flip one MB unit in place: one mirrored pair now opposes its
    # partner's orientation while the others share it.
    for i, dev in enumerate(dp_layout.devices):
        if dev.device == "MB":
            dp_layout.devices[i] = replace(dev, flipped=not dev.flipped)
            break
    report = run_symmetry_geo(dp_layout, dp_spec, tech)
    assert report.count("SYMG-ORIENT") == 1
    assert report.count("SYMG-PLACE") == 0


def test_symg_wire_len_on_one_sided_trunk_metal(dp_layout, dp_spec, tech):
    # Give outp 5 um of extra trunk routing that outn does not have.
    dp_layout.wires.append(
        Wire("outp", "M2", Rect(0, 21000, 5000, 21032), role="route")
    )
    report = run_symmetry_geo(dp_layout, dp_spec, tech)
    assert report.count("SYMG-WIRE-LEN") == 1
    assert "outp/outn" in {v.subject for v in report.violations}


def test_symg_via_count_on_unbalanced_ladder(dp_layout, dp_spec, tech):
    # Add cuts to outp's M2->M3 ladder only.
    dp_layout.vias.append(Via("outp", "M2", "M3", Point(100, 100), cuts=4))
    report = run_symmetry_geo(dp_layout, dp_spec, tech)
    assert report.count("SYMG-VIA-COUNT") == 1


def test_symg_via_count_skips_device_metal_ladders(dp_layout, dp_spec, tech):
    # Stub-contact ladders follow diffusion parity by construction, so
    # an M1-touching imbalance must not fire.
    dp_layout.vias.append(Via("outp", "M1", "M2", Point(100, 100), cuts=4))
    report = run_symmetry_geo(dp_layout, dp_spec, tech)
    assert report.count("SYMG-VIA-COUNT") == 0
