"""Seeded connectivity (LVS-lite) violations must surface exact rule IDs."""

from dataclasses import replace

from repro.geometry import Point, Rect, Via, Wire
from repro.verify import NetGraph, run_connectivity


def _stub_indices(layout, owner):
    return [
        i for i, w in enumerate(layout.wires)
        if w.role == "finger_stub" and w.owner == owner
    ]


def test_clean_layout_has_no_connectivity_errors(dp_layout, dp_spec, tech):
    report = run_connectivity(dp_layout, tech, spec=dp_spec)
    assert not report.errors


def test_short_between_nets_flagged(dp_layout, dp_spec, tech):
    # Lay a foreign-net wire straight across an existing strap.
    strap = next(w for w in dp_layout.wires if w.role == "strap")
    dp_layout.wires.append(
        Wire("intruder", strap.layer, strap.rect.translated(0, 0))
    )
    report = run_connectivity(dp_layout, tech, spec=dp_spec)
    assert report.count("CONN-SHORT") >= 1


def test_touching_same_net_wires_do_not_short(dp_layout, dp_spec, tech):
    report = run_connectivity(dp_layout, tech, spec=dp_spec)
    assert report.count("CONN-SHORT") == 0


def test_floating_island_flagged(dp_layout, dp_spec, tech):
    # A same-net wire far away from the rest of the net.
    net = dp_layout.wires[0].net
    dp_layout.wires.append(Wire(net, "M2", Rect(50000, 50000, 50500, 50032)))
    report = run_connectivity(dp_layout, tech, spec=dp_spec)
    assert report.count("CONN-FLOAT-NET") == 1
    offender = next(v for v in report.violations if v.rule == "CONN-FLOAT-NET")
    assert offender.subject == net


def test_floating_via_flagged(dp_layout, dp_spec, tech):
    dp_layout.vias.append(Via("nowhere", "M1", "M2", Point(77777, 77777)))
    report = run_connectivity(dp_layout, tech, spec=dp_spec)
    assert report.count("CONN-VIA-FLOAT") == 1


def test_port_off_metal_flagged(dp_layout, dp_spec, tech):
    port = dp_layout.ports[0]
    dp_layout.ports[0] = replace(port, rect=port.rect.translated(10**6, 10**6))
    report = run_connectivity(dp_layout, tech, spec=dp_spec)
    assert report.count("CONN-PORT-OPEN") == 1


def test_terminal_rewired_to_wrong_net_flagged(dp_layout, dp_spec, tech):
    owner = f"{dp_spec.devices[0].name}.d"
    index = _stub_indices(dp_layout, owner)[0]
    dp_layout.wires[index] = replace(dp_layout.wires[index], net="hijacked")
    report = run_connectivity(dp_layout, tech, spec=dp_spec)
    assert report.count("CONN-TERM-NET") == 1
    offender = next(v for v in report.violations if v.rule == "CONN-TERM-NET")
    assert offender.subject == owner


def test_terminal_with_no_stubs_flagged(dp_layout, dp_spec, tech):
    owner = f"{dp_spec.devices[0].name}.g"
    doomed = set(_stub_indices(dp_layout, owner))
    assert doomed
    dp_layout.wires = [
        w for i, w in enumerate(dp_layout.wires) if i not in doomed
    ]
    report = run_connectivity(dp_layout, tech, spec=dp_spec)
    assert report.count("CONN-TERM-MISSING") == 1


def test_stub_cut_off_from_port_flagged(dp_layout, dp_spec, tech):
    # Strand one drain stub on its own island: move it far away but keep
    # its net label, so the net splits and the stub can't reach the port.
    dev = dp_spec.devices[0]
    owner = f"{dev.name}.d"
    expected = dev.terminals["d"]
    if expected not in {p.net for p in dp_layout.ports}:
        expected = None
    index = _stub_indices(dp_layout, owner)[0]
    wire = dp_layout.wires[index]
    dp_layout.wires[index] = replace(
        wire, rect=wire.rect.translated(10**6, 10**6)
    )
    report = run_connectivity(dp_layout, tech, spec=dp_spec)
    assert report.count("CONN-FLOAT-NET") >= 1
    if expected is not None:
        assert report.count("CONN-TERM-UNREACHED") == 1


def test_wired_spec_port_net_without_port_shape_warns(dp_layout, dp_spec, tech):
    target = dp_layout.ports[0].net
    dp_layout.ports = [p for p in dp_layout.ports if p.net != target]
    report = run_connectivity(dp_layout, tech, spec=dp_spec)
    assert report.count("CONN-PORT-MISSING") == 1
    warning = next(
        v for v in report.violations if v.rule == "CONN-PORT-MISSING"
    )
    assert not warning.is_error


def test_structural_checks_run_without_spec(dp_layout, tech):
    report = run_connectivity(dp_layout, tech)
    assert not report.errors
    assert report.count("CONN-TERM-MISSING") == 0


def test_netgraph_islands_and_connected(dp_layout):
    graph = NetGraph(dp_layout)
    net = dp_layout.ports[0].net
    assert len(graph.net_islands(net)) == 1
    indices = graph.wire_indices(net)
    assert graph.connected(("w", indices[0]), ("w", indices[-1]))


def test_netgraph_via_lands_on_both_layers(dp_layout):
    graph = NetGraph(dp_layout)
    for index, via in enumerate(dp_layout.vias[:10]):
        root = graph.find(("v", index))
        assert root != ("v", index)  # every generator via touches metal
