"""Seeded-violation tests for the constraint/symmetry analyzer."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.pnr.detailed import DetailedRoute
from repro.verify import Report, check_route_parallelism, run_constraints
from repro.verify.rules import Waiver, WaiverSet


@pytest.fixture
def dp_abba(dp_primitive, dp_base):
    import copy

    return copy.deepcopy(dp_primitive.generate(dp_base, "ABBA", verify=False))


def _swap_one_pair(layout):
    """Swap the device names of one MA and one MB unit in *different*
    rows (a placement bug).  A same-row swap of a one-A-one-B row would
    still mirror; crossing rows breaks the per-row unit counts."""
    ia = next(
        i for i, d in enumerate(layout.devices) if d.device == "MA"
    )
    row_a = layout.devices[ia].rect.y0
    ib = next(
        i
        for i, d in enumerate(layout.devices)
        if d.device == "MB" and d.rect.y0 != row_a
    )
    layout.devices[ia] = replace(layout.devices[ia], device="MB")
    layout.devices[ib] = replace(layout.devices[ib], device="MA")


def test_clean_abba_dp_has_no_findings(dp_abba, dp_spec, tech):
    report = run_constraints(dp_abba, dp_spec, tech)
    assert not report.violations, report.render_text()
    assert report.checked_shapes == 12


def test_clustered_pattern_makes_no_promise(dp_primitive, dp_base, dp_spec, tech):
    """AABB clusters each device on its own side — legal by declaration,
    so no mirror/centroid rule may fire on it."""
    layout = dp_primitive.generate(dp_base, "AABB", verify=False)
    report = run_constraints(layout, dp_spec, tech)
    assert not report.violations, report.render_text()


def test_swapped_finger_breaks_symmetry(dp_abba, dp_spec, tech):
    """The satellite mutation: swapping one diff-pair finger must break
    the mirror-symmetry rule (and shift the common centroid)."""
    _swap_one_pair(dp_abba)
    report = run_constraints(dp_abba, dp_spec, tech)
    rules = set(report.rules_hit())
    assert "CONST-SYM-AXIS" in rules, report.render_text()
    assert "CONST-CENTROID" in rules


def test_swapped_finger_breaks_lde_equivalence(dp_abba, dp_spec, tech):
    """A swapped unit also skews the LDE environment (the swapped column
    sees different LOD/WPE context) beyond the matched tolerance."""
    _swap_one_pair(dp_abba)
    report = run_constraints(dp_abba, dp_spec, tech)
    assert "CONST-MATCH-LDE" in report.rules_hit(), report.render_text()


def test_unit_size_mismatch_fires(dp_abba, dp_spec, tech):
    unit = dp_abba.devices[0]
    dp_abba.devices[0] = replace(unit, nfin=unit.nfin + 1)
    report = run_constraints(dp_abba, dp_spec, tech)
    assert "CONST-MATCH-SIZE" in report.rules_hit()


def test_missing_unit_fires_size_rule(dp_abba, dp_spec, tech):
    removed = next(d for d in dp_abba.devices if d.device == "MA")
    dp_abba.devices.remove(removed)
    report = run_constraints(dp_abba, dp_spec, tech)
    assert any(
        v.rule == "CONST-MATCH-SIZE" and "m=6" in v.message
        for v in report.errors
    ), report.render_text()


def test_removed_strap_breaks_wire_symmetry(dp_abba, dp_spec, tech):
    net_a = dp_spec.symmetric_pairs[0][0]
    strap = next(
        w
        for w in dp_abba.wires
        if w.net == net_a and w.role == "strap"
    )
    dp_abba.wires.remove(strap)
    report = run_constraints(dp_abba, dp_spec, tech)
    assert "CONST-SYM-WIRES" in report.rules_hit(), report.render_text()
    pair = "/".join(dp_spec.symmetric_pairs[0])
    assert any(v.subject == pair for v in report.errors)


def test_translated_device_breaks_centroid(dp_abba, dp_spec, tech):
    """Shift every MA unit up one row-height: mirror symmetry per row
    survives within rows but the shared centroid is gone."""
    for i, unit in enumerate(dp_abba.devices):
        if unit.device == "MA":
            dp_abba.devices[i] = replace(
                unit, rect=unit.rect.translated(0, 5000)
            )
    report = run_constraints(dp_abba, dp_spec, tech)
    assert "CONST-CENTROID" in report.rules_hit(), report.render_text()


# -- route parallelism ------------------------------------------------------


def _route(net, n, matched_with=None):
    return DetailedRoute(net=net, n_parallel=n, matched_with=matched_with)


def test_route_parallelism_clean():
    routes = {
        "outp": _route("outp", 2, "outn"),
        "outn": _route("outn", 2, "outp"),
        "bias": _route("bias", 1),
    }
    report = check_route_parallelism(routes, {"outp": 2, "outn": 2})
    assert not report.violations
    assert report.checked_shapes == 3


def test_route_parallelism_mismatched_pair_fires_once():
    routes = {
        "outp": _route("outp", 3, "outn"),
        "outn": _route("outn", 1, "outp"),
    }
    report = check_route_parallelism(routes)
    assert report.count("CONST-ROUTE-PARALLEL") == 1
    assert report.errors[0].subject == "outn/outp"


def test_route_parallelism_missing_partner_fires():
    routes = {"outp": _route("outp", 2, "outn")}
    report = check_route_parallelism(routes)
    assert report.count("CONST-ROUTE-PARALLEL") == 1
    assert "no detailed route" in report.errors[0].message


def test_route_parallelism_budget_shortfall_fires():
    routes = {"out": _route("out", 1)}
    report = check_route_parallelism(routes, {"out": 3})
    assert report.count("CONST-ROUTE-PARALLEL") == 1
    assert "budget is 3" in report.errors[0].message


def test_route_parallelism_matched_budget_is_shared():
    # outn budgets 3; outp must meet the shared (max) budget.
    routes = {
        "outp": _route("outp", 2, "outn"),
        "outn": _route("outn", 2, "outp"),
    }
    report = check_route_parallelism(routes, {"outn": 3})
    assert report.count("CONST-ROUTE-PARALLEL") == 2  # both below 3


# -- waivers against constraint findings ------------------------------------


def test_waiver_suppresses_constraint_finding(dp_abba, dp_spec, tech):
    net_a = dp_spec.symmetric_pairs[0][0]
    strap = next(
        w for w in dp_abba.wires if w.net == net_a and w.role == "strap"
    )
    dp_abba.wires.remove(strap)
    report = run_constraints(dp_abba, dp_spec, tech)
    assert not report.ok
    waivers = WaiverSet(
        [Waiver(rule="CONST-SYM-WIRES", layout="vdp_*", reason="seeded")]
    )
    assert report.apply_waivers(waivers) >= 1
    assert report.ok
    assert report.waived_violations
    assert all(v.waive_reason == "seeded" for v in report.waived_violations)


def test_waiver_wrong_layout_does_not_match(dp_abba, dp_spec, tech):
    _swap_one_pair(dp_abba)
    report = run_constraints(dp_abba, dp_spec, tech)
    waivers = WaiverSet(
        [Waiver(rule="CONST-SYM-AXIS", layout="other_*", reason="nope")]
    )
    assert report.apply_waivers(waivers) == 0
    assert not report.ok


def test_apply_waivers_none_is_noop():
    report = Report(target="t")
    report.flag("CONST-SYM-AXIS", "m")
    assert report.apply_waivers(None) == 0
    assert not report.ok
