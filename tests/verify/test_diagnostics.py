"""Violation records and report aggregation."""

import json

import pytest

from repro.errors import VerificationError
from repro.geometry import Point, Rect
from repro.verify import Report, Violation


def test_violation_render_mentions_everything():
    v = Violation(
        rule="DRC-FIN-PITCH",
        severity="error",
        message="bad height",
        layout="cell",
        subject="MA[0]",
        location=Point(10, 20),
    )
    text = v.render()
    assert "ERROR" in text
    assert "DRC-FIN-PITCH" in text
    assert "cell/MA[0]" in text
    assert "@ (10, 20)" in text


def test_violation_rect_location_fallback():
    v = Violation("CONN-SHORT", "error", "m", rect=Rect(1, 2, 3, 4))
    assert "(1, 2)..(3, 4)" in v.render()


def test_violation_rejects_unknown_severity():
    with pytest.raises(VerificationError):
        Violation("DRC-X", "fatal", "nope")


def test_violation_to_dict_omits_empty_fields():
    d = Violation("DRC-X", "warning", "msg").to_dict()
    assert d == {"rule": "DRC-X", "severity": "warning", "message": "msg"}


def test_report_add_stamps_target_as_layout():
    report = Report(target="cell")
    v = report.add("DRC-X", "error", "msg")
    assert v.layout == "cell"
    assert report.violations == [v]


def test_report_partitions_errors_and_warnings():
    report = Report()
    report.add("A", "error", "m")
    report.add("B", "warning", "m")
    report.add("A", "error", "m")
    assert len(report.errors) == 2
    assert len(report.warnings) == 1
    assert not report.ok
    assert report.rules_hit() == ["A", "B"]
    assert report.count("A") == 2
    assert report.counts_by_rule() == {"A": 2, "B": 1}


def test_report_ok_with_only_warnings():
    report = Report()
    report.add("B", "warning", "m")
    assert report.ok


def test_report_merge_accumulates():
    a = Report(target="a", checked_shapes=3)
    a.add("X", "error", "m")
    b = Report(target="b", checked_shapes=4)
    b.add("Y", "warning", "m")
    a.merge(b)
    assert a.checked_shapes == 7
    assert a.rules_hit() == ["X", "Y"]


def test_summary_clean_and_dirty():
    clean = Report(target="t", checked_shapes=9)
    assert "CLEAN" in clean.summary()
    assert "9 shapes" in clean.summary()
    dirty = Report(target="t")
    dirty.add("X", "error", "m")
    assert "1 error(s)" in dirty.summary()


def test_render_text_caps_per_rule():
    report = Report(target="t")
    for _ in range(7):
        report.add("X", "error", "m")
    text = report.render_text(max_per_rule=2)
    assert "X: 7" in text
    assert "... 5 more" in text
    assert text.count("ERROR") == 2


def test_render_json_roundtrips():
    report = Report(target="t", checked_shapes=1)
    report.add("X", "error", "m", rect=Rect(0, 0, 1, 1))
    data = json.loads(report.render_json())
    assert data["target"] == "t"
    assert data["ok"] is False
    assert data["counts"] == {"X": 1}
    assert data["violations"][0]["rect"] == [0, 0, 1, 1]


def test_raise_if_errors_carries_report():
    report = Report(target="t")
    report.add("X", "error", "m")
    with pytest.raises(VerificationError) as excinfo:
        report.raise_if_errors()
    assert excinfo.value.report is report
    assert "X" in str(excinfo.value)


def test_raise_if_errors_noop_when_clean():
    report = Report(target="t")
    report.add("X", "warning", "m")
    report.raise_if_errors()


def test_merge_dedups_identical_violations():
    a = Report(target="t")
    a.add("X", "error", "m", subject="s")
    b = Report(target="t")
    b.add("X", "error", "m", subject="s")       # duplicate
    b.add("X", "error", "m", subject="other")   # distinct subject survives
    a.merge(b)
    assert len(a.violations) == 2
    # Re-merging the same report adds nothing.
    c = Report(target="t")
    c.add("X", "error", "m", subject="s")
    a.merge(c)
    assert len(a.violations) == 2


def test_merge_sorts_violations_stably():
    a = Report(target="zzz")
    a.add("DRC-X", "error", "m", location=Point(5, 0))
    b = Report(target="aaa")
    b.add("CONN-Y", "error", "m", location=Point(1, 0))
    b.add("CONN-Y", "error", "m", location=Point(0, 0))
    a.merge(b)
    keys = [v.sort_key() for v in a.violations]
    assert keys == sorted(keys)
    assert a.violations[0].layout == "aaa"


def test_waived_violations_excluded_from_errors():
    from dataclasses import replace

    report = Report(target="t")
    v = report.add("X", "error", "m")
    report.violations[0] = replace(v, waived=True, waive_reason="known")
    assert report.ok
    assert not report.errors
    assert len(report.waived_violations) == 1
    assert "waived" in report.violations[0].render()
    d = report.violations[0].to_dict()
    assert d["waived"] is True
    assert d["waive_reason"] == "known"
    assert "1 waived" in report.summary()


def test_fails_thresholds():
    report = Report(target="t")
    report.add("X", "warning", "m")
    assert not report.fails("error")
    assert report.fails("warning")
    report.add("Y", "error", "m")
    assert report.fails("error")
    with pytest.raises(VerificationError):
        report.fails("fatal")
