"""Seeded design-rule violations must surface exact rule IDs."""

from dataclasses import replace

from repro.geometry import Instance, Layout, Point, Rect, Via, Wire
from repro.verify import Report, run_drc
from repro.verify.drc import check_instance_overlaps, rect_gap


def test_clean_layout_has_no_drc_errors(dp_layout, tech):
    report = run_drc(dp_layout, tech)
    assert not report.errors
    assert report.checked_shapes > 0


def test_off_fin_grid_height_flagged(dp_layout, tech):
    dev = dp_layout.devices[0]
    bad = replace(dev, rect=Rect(dev.rect.x0, dev.rect.y0,
                                 dev.rect.x1, dev.rect.y1 + 7))
    dp_layout.devices[0] = bad
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-FIN-PITCH") == 1


def test_off_poly_grid_width_flagged(dp_layout, tech):
    dev = dp_layout.devices[0]
    bad = replace(dev, rect=Rect(dev.rect.x0, dev.rect.y0,
                                 dev.rect.x1 + 13, dev.rect.y1))
    dp_layout.devices[0] = bad
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-POLY-PITCH") == 1


def test_off_grid_x_origin_flagged(dp_layout, tech):
    dev = dp_layout.devices[0]
    bad = replace(dev, rect=dev.rect.translated(7, 0))
    dp_layout.devices[0] = bad
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-POLY-PITCH") == 1
    # The x-grid phase is not checked in assembly (relative) mode.
    relaxed = run_drc(dp_layout, tech, absolute_grid=False)
    assert relaxed.count("DRC-POLY-PITCH") == 0


def test_wrong_dummy_count_breaks_footprint(dp_layout, tech):
    dev = dp_layout.devices[0]
    dp_layout.devices[0] = replace(dev, dummy_fingers=dev.dummy_fingers + 3)
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-FINGER-FOOTPRINT") >= 1


def test_overlapping_actives_flagged(dp_layout, tech):
    dev = dp_layout.devices[0]
    dp_layout.devices.append(
        replace(dev, unit_index=99, rect=dev.rect.translated(1, 1))
    )
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-ACTIVE-OVERLAP") >= 1


def test_undersized_wire_flagged(dp_layout, tech):
    dp_layout.wires.append(Wire("x", "M2", Rect(0, 5000, 500, 5010)))
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-WIRE-WIDTH") == 1


def test_wire_spacing_violation_flagged(dp_layout, tech):
    # Two routing wires of different nets 1 nm apart, far from the cell.
    dp_layout.wires.append(Wire("a", "M2", Rect(0, 9000, 500, 9032)))
    dp_layout.wires.append(Wire("b", "M2", Rect(0, 9033, 500, 9065)))
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-WIRE-SPACING") >= 1


def test_unknown_layer_flagged(dp_layout, tech):
    dp_layout.wires.append(Wire("x", "M99", Rect(0, 5000, 500, 5032)))
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-LAYER-UNKNOWN") == 1


def test_non_adjacent_via_flagged(dp_layout, tech):
    dp_layout.vias.append(Via("x", "M1", "M3", Point(100, 100)))
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-VIA-STACK") == 1


def test_unlanded_via_is_enclosure_warning(dp_layout, tech):
    dp_layout.vias.append(Via("x", "M1", "M2", Point(99999, 99999)))
    report = run_drc(dp_layout, tech)
    added = [
        v for v in report.violations
        if v.rule == "DRC-VIA-ENCLOSURE" and v.location == Point(99999, 99999)
    ]
    assert len(added) == 2  # neither side lands
    assert all(not v.is_error for v in added)


def test_zero_cut_via_flagged(dp_layout, tech):
    via = dp_layout.vias[0]
    # Via.__post_init__ rejects cuts < 1, so corrupt a frozen instance.
    object.__setattr__(via, "cuts", 0)
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-VIA-CUTS") == 1


def test_shrunken_well_flagged(dp_layout, tech):
    well = dp_layout.well_rect
    assert well is not None
    dp_layout.well_rect = Rect(well.x0 + 100, well.y0 + 100, well.x1, well.y1)
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-WELL-ENCLOSURE") >= 1


def test_missing_well_is_warning(dp_layout, tech):
    dp_layout.well_rect = None
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-WELL-MISSING") == 1
    assert report.ok  # a warning, not an error


def test_port_outside_bbox_flagged(dp_layout, tech):
    port = dp_layout.ports[0]
    dp_layout.ports[0] = replace(port, rect=port.rect.translated(10**6, 0))
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-PORT-BBOX") == 1


def test_port_on_unknown_layer_flagged(dp_layout, tech):
    port = dp_layout.ports[0]
    dp_layout.ports[0] = replace(port, layer="poly")
    report = run_drc(dp_layout, tech)
    assert report.count("DRC-LAYER-UNKNOWN") == 1


def test_instance_overlap_flagged(dp_layout):
    a = Instance("a", dp_layout, Point(0, 0))
    b = Instance("b", dp_layout, Point(10, 10))
    report = Report(target="asm")
    check_instance_overlaps(report, [a, b])
    assert report.count("DRC-PLACE-OVERLAP") == 1


def test_disjoint_instances_clean(dp_layout):
    a = Instance("a", dp_layout, Point(0, 0))
    b = Instance("b", dp_layout, Point(dp_layout.width + 500, 0))
    report = Report(target="asm")
    check_instance_overlaps(report, [a, b])
    assert report.ok


def test_rect_gap_signs():
    assert rect_gap(Rect(0, 0, 10, 10), Rect(20, 0, 30, 10)) == 10
    assert rect_gap(Rect(0, 0, 10, 10), Rect(10, 0, 20, 10)) == 0
    assert rect_gap(Rect(0, 0, 10, 10), Rect(5, 5, 20, 20)) < 0


def test_ports_layout_without_ports_is_fine(tech):
    lay = Layout(name="bare")
    assert run_drc(lay, tech).ok
