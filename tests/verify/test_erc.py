"""Seeded-violation tests for the ERC engine: every rule ID fires."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.devices.mosfet import MosGeometry
from repro.spice.netlist import Circuit
from repro.tech import Technology
from repro.verify import verify_circuit
from repro.verify.erc import is_supply, run_erc

TECH = Technology.default()
GEOM = MosGeometry(nfin=4, nf=2, m=1)


def _amp() -> Circuit:
    """A clean resistor-loaded common-source stage."""
    c = Circuit("amp")
    c.ports = ["vin", "vout"]
    c.add_vsource("vdd", "vdd!", "0", 0.8)
    c.add_mosfet("m1", "vout", "vin", "0", "0", TECH.nmos, GEOM)
    c.add_resistor("rl", "vdd!", "vout", 1e4)
    return c


def test_clean_stage_has_no_findings():
    report = run_erc(_amp())
    assert not report.violations, report.render_text()
    assert report.checked_shapes > 0


def test_is_supply_convention():
    assert is_supply("vdd!")
    assert is_supply("vbias!")
    assert not is_supply("vss!")  # ground spelling, not a supply
    assert not is_supply("vdd")
    assert not is_supply("0")


def test_floating_gate_fires():
    c = _amp()
    # Second stage whose gate hangs on a net only a capacitor touches.
    c.add_capacitor("cc", "vout", "mid", 1e-15)
    c.add_mosfet("m2", "vdd!", "mid", "0", "0", TECH.nmos, GEOM)
    report = run_erc(c)
    assert report.count("ERC-FLOAT-GATE") == 1
    assert any(v.subject == "m2" for v in report.errors)


def test_cutting_dp_gate_wire_fires_float_gate(dp_primitive):
    """The satellite mutation: cut one gate wire of the diff pair's
    schematic reference and the floating-gate rule must fire."""
    circuit = dp_primitive.schematic_circuit()
    assert not run_erc(circuit).errors
    mos = circuit.mosfets()[0]
    circuit.replace_element(mos.name, replace(mos, g="cut_gate_net"))
    report = run_erc(circuit)
    assert report.count("ERC-FLOAT-GATE") == 1


def test_undriven_net_fires():
    c = _amp()
    c.add_resistor("r2", "islandA", "islandB", 1e3)  # isolated pair
    report = run_erc(c)
    assert report.count("ERC-UNDRIVEN") == 2
    assert {v.subject for v in report.errors} == {"islandA", "islandB"}


def test_undriven_skips_pure_gate_nets():
    c = _amp()
    # 'mid' touches only gates: ERC-FLOAT-GATE names each device and
    # the reachability check must not double-report the net itself.
    c.add_mosfet("m2", "vdd!", "mid", "0", "0", TECH.nmos, GEOM)
    c.add_mosfet("m3", "vdd!", "mid", "0", "0", TECH.nmos, GEOM)
    report = run_erc(c)
    assert report.count("ERC-UNDRIVEN") == 0
    assert report.count("ERC-FLOAT-GATE") == 2


def test_supply_short_through_inductor():
    c = _amp()
    c.add_inductor("lshort", "vdd!", "0", 1e-9)
    report = run_erc(c)
    assert report.count("ERC-SUPPLY-SHORT") == 1
    assert "lshort" in report.errors[0].message


def test_supply_short_through_zero_volt_source_chain():
    c = _amp()
    # Two zero-volt sources in series still merge the rails.
    c.add_vsource("v1", "vdd!", "x", 0.0)
    c.add_vsource("v2", "x", "0", 0.0)
    report = run_erc(c)
    assert report.count("ERC-SUPPLY-SHORT") == 1


def test_nonzero_source_between_rails_is_fine():
    report = run_erc(_amp())  # vdd source drives vdd! from 0 at 0.8 V
    assert report.count("ERC-SUPPLY-SHORT") == 0


def test_source_shorting_itself_fires():
    c = _amp()
    c.add_vsource("vbad", "vout", "vout", 0.1)
    report = run_erc(c)
    assert report.count("ERC-SUPPLY-SHORT") == 1
    assert report.errors[0].subject == "vbad"


def test_bulk_polarity_nmos_on_supply():
    c = _amp()
    mos = c.element("m1")
    c.replace_element("m1", replace(mos, b="vdd!"))
    report = run_erc(c)
    assert report.count("ERC-BULK-POLARITY") == 1


def test_bulk_polarity_pmos_on_ground():
    c = _amp()
    c.add_mosfet("mp", "vout", "vin", "vdd!", "0", TECH.pmos, GEOM)
    report = run_erc(c)
    assert report.count("ERC-BULK-POLARITY") == 1
    assert "PMOS" in report.errors[0].message


def test_dangling_port_fires():
    c = _amp()
    c.ports.append("enable")
    report = run_erc(c)
    assert report.count("ERC-DANGLING-PORT") == 1
    assert report.errors[0].subject == "enable"


def test_dangling_net_warns():
    c = _amp()
    c.add_resistor("rstub", "vout", "stub", 1e3)
    report = run_erc(c)
    assert report.count("ERC-DANGLING-NET") == 1
    assert report.warnings[0].subject == "stub"
    assert report.ok  # warning only


def test_self_loop_warns():
    c = _amp()
    c.add_resistor("rloop", "vout", "vout", 1e3)
    report = run_erc(c)
    assert report.count("ERC-SELF-LOOP") == 1


def test_self_loop_folds_ground_spellings():
    c = _amp()
    c.add_capacitor("cgnd", "gnd", "vss!", 1e-15)
    report = run_erc(c)
    assert report.count("ERC-SELF-LOOP") == 1


def test_zero_value_capacitor_warns():
    c = _amp()
    c.add_capacitor("cz", "vout", "0", 0.0)
    report = run_erc(c)
    assert report.count("ERC-ZERO-VALUE") == 1


def test_verify_circuit_strict_raises():
    from repro.errors import VerificationError

    c = _amp()
    c.add_inductor("lshort", "vdd!", "0", 1e-9)
    with pytest.raises(VerificationError, match="ERC-SUPPLY-SHORT"):
        verify_circuit(c, strict=True)


def test_verify_circuit_waivers_suppress():
    from repro.verify import Waiver, WaiverSet

    c = _amp()
    c.add_inductor("lshort", "vdd!", "0", 1e-9)
    waivers = WaiverSet(
        [Waiver(rule="ERC-SUPPLY-SHORT", reason="test bed shunt")]
    )
    report = verify_circuit(c, strict=True, waivers=waivers)  # no raise
    assert report.ok
    assert len(report.waived_violations) == 1
