"""Property: every seed-library primitive variant verifies clean.

The paper's correct-by-construction claim, checked exhaustively-ish: a
hypothesis strategy samples (primitive, sizing variant, pattern) across
the whole MOS library and asserts zero unwaived error-severity
violations from the combined DRC + connectivity + constraint pass, and
zero ERC findings on every primitive's schematic reference.

The repository waiver baseline (``.reprolint.toml``) is loaded so the
one known generator limitation (the delay cell's strap-mesh asymmetry)
stays visible but does not fail the property.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cellgen.patterns import available_patterns
from repro.primitives import PrimitiveLibrary
from repro.primitives.base import MosPrimitive
from repro.tech import Technology
from repro.verify import WaiverSet, verify_circuit, verify_layout

_TECH = Technology.default()
_LIBRARY = PrimitiveLibrary()
_WAIVERS = WaiverSet.load(Path(__file__).parents[2] / ".reprolint.toml")


def _mos_names() -> list[str]:
    names = []
    for name in _LIBRARY.names():
        try:
            primitive = _LIBRARY.create(name, _TECH, base_fins=48)
        except TypeError:
            continue  # passives take no base_fins and emit no layouts
        if isinstance(primitive, MosPrimitive):
            names.append(name)
    return names


MOS_NAMES = _mos_names()


@st.composite
def primitive_cases(draw):
    name = draw(st.sampled_from(MOS_NAMES))
    fins = draw(st.sampled_from([48, 96]))
    primitive = _LIBRARY.create(name, _TECH, base_fins=fins)
    variants = primitive.variants()
    base = variants[draw(st.integers(0, len(variants) - 1))]
    matched = list(primitive.matched_group())
    counts = {
        t.name: base.m * t.m_ratio
        for t in primitive.templates()
        if t.name in matched
    }
    patterns = available_patterns(matched, counts)
    pattern = patterns[draw(st.integers(0, len(patterns) - 1))]
    return primitive, base, pattern


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=primitive_cases())
def test_every_primitive_variant_verifies_clean(case):
    primitive, base, pattern = case
    layout = primitive.generate(base, pattern, verify=False)
    report = verify_layout(
        layout, _TECH, spec=primitive.cell_spec(base), waivers=_WAIVERS
    )
    assert report.ok, report.render_text(max_per_rule=3)


def test_library_has_layout_primitives():
    assert len(MOS_NAMES) >= 20


@pytest.mark.parametrize("name", _LIBRARY.names())
def test_every_schematic_passes_erc(name):
    """Every primitive's schematic reference is ERC-clean — no errors,
    no warnings; a lint finding on a library netlist is a library bug."""
    try:
        primitive = _LIBRARY.create(name, _TECH, base_fins=96)
    except TypeError:
        primitive = _LIBRARY.create(name, _TECH)
    report = verify_circuit(primitive.schematic_circuit())
    assert not report.violations, report.render_text(max_per_rule=3)


@pytest.mark.parametrize("name", MOS_NAMES)
def test_first_variant_default_pattern_clean(name):
    """Deterministic floor under the property test: one case per entry."""
    primitive = _LIBRARY.create(name, _TECH, base_fins=96)
    base = primitive.variants()[0]
    matched = list(primitive.matched_group())
    counts = {
        t.name: base.m * t.m_ratio
        for t in primitive.templates()
        if t.name in matched
    }
    pattern = available_patterns(matched, counts)[0]
    layout = primitive.generate(base, pattern, verify=False)
    report = verify_layout(
        layout, _TECH, spec=primitive.cell_spec(base), waivers=_WAIVERS
    )
    assert report.ok, report.render_text(max_per_rule=3)
    assert report.checked_shapes > 0
