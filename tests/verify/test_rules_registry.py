"""The shared rule registry: catalog integrity, collision guard, waivers."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import VerificationError
from repro.verify import Report, all_rules, rule, rules_in_category
from repro.verify.rules import (
    CATEGORIES,
    Waiver,
    WaiverSet,
    is_registered,
    register_rule,
)

DOCS = (Path(__file__).parents[2] / "docs" / "verification.md").read_text()


def test_catalog_is_nonempty_and_unique():
    rules = all_rules()
    ids = [r.id for r in rules]
    assert len(ids) == len(set(ids))
    assert len(ids) >= 36  # 14 DRC + 8 CONN + 8 ERC + 6 CONST
    for prefix in CATEGORIES:
        assert rules_in_category(prefix), f"no rules in category {prefix}"


def test_every_rule_is_documented():
    """Satellite guard: each registered ID appears in docs/verification.md."""
    undocumented = [r.id for r in all_rules() if r.id not in DOCS]
    assert not undocumented, (
        f"rules missing from docs/verification.md: {undocumented}"
    )


def test_every_rule_has_description_and_valid_severity():
    for r in all_rules():
        assert r.description, r.id
        assert r.severity in ("warning", "error"), r.id
        assert r.category == r.id.split("-", 1)[0], r.id


def test_duplicate_registration_raises():
    with pytest.raises(VerificationError, match="duplicate"):
        register_rule("DRC-FIN-PITCH", "error", "again")


def test_unknown_prefix_rejected():
    with pytest.raises(VerificationError, match="category prefix"):
        register_rule("LVS-SOMETHING", "error", "no such category")


def test_bad_severity_rejected():
    with pytest.raises(VerificationError, match="severity"):
        register_rule("ERC-BRAND-NEW", "fatal", "bad severity")
    assert not is_registered("ERC-BRAND-NEW")


def test_rule_lookup_and_miss():
    assert rule("ERC-FLOAT-GATE").severity == "error"
    assert rule("DRC-VIA-ENCLOSURE").severity == "warning"
    with pytest.raises(VerificationError, match="unknown rule"):
        rule("ERC-NOT-REGISTERED")


def test_report_flag_uses_registry_severity():
    report = Report(target="t")
    v = report.flag("DRC-VIA-ENCLOSURE", "msg")
    assert v.severity == "warning"
    v = report.flag("CONN-SHORT", "msg")
    assert v.severity == "error"


# -- waivers ----------------------------------------------------------------


def test_waiver_requires_registered_rule():
    with pytest.raises(VerificationError, match="unregistered"):
        Waiver(rule="ERC-NOT-A-RULE", reason="because")


def test_waiver_requires_reason():
    with pytest.raises(VerificationError, match="reason"):
        Waiver(rule="ERC-FLOAT-GATE")


def test_waiver_matches_patterns():
    report = Report(target="cell_abab")
    v = report.flag("CONST-SYM-WIRES", "m", subject="a/b")
    w = Waiver(rule="CONST-SYM-WIRES", layout="cell_*", reason="known")
    assert w.matches(v)
    assert not Waiver(
        rule="CONST-SYM-WIRES", layout="other_*", reason="known"
    ).matches(v)
    assert not Waiver(
        rule="CONST-CENTROID", layout="cell_*", reason="known"
    ).matches(v)
    assert not Waiver(
        rule="CONST-SYM-WIRES", subject="c/*", reason="known"
    ).matches(v)


def test_waiverset_load_roundtrip(tmp_path):
    path = tmp_path / "base.toml"
    path.write_text(
        "# baseline\n"
        "[[waive]]\n"
        'rule = "CONST-SYM-WIRES"\n'
        'layout = "delay_*"\n'
        'reason = "known limitation"\n'
        "\n"
        "[[waive]]\n"
        'rule = "DRC-VIA-ENCLOSURE"\n'
        'reason = "redundant cuts"\n'
    )
    ws = WaiverSet.load(path)
    assert len(ws) == 2
    assert ws.waivers[0].layout == "delay_*"
    assert ws.waivers[1].subject == "*"
    assert ws.source == str(path)


def test_waiverset_load_rejects_unknown_keys(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text(
        '[[waive]]\nrule = "CONN-SHORT"\nreason = "x"\nseverity = "error"\n'
    )
    with pytest.raises(VerificationError, match="unknown keys"):
        WaiverSet.load(path)


def test_waiverset_load_rejects_missing_rule(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text('[[waive]]\nreason = "x"\n')
    with pytest.raises(VerificationError, match="missing 'rule'"):
        WaiverSet.load(path)


def test_waiverset_load_missing_file_raises(tmp_path):
    with pytest.raises(VerificationError, match="cannot read"):
        WaiverSet.load(tmp_path / "absent.toml")


def test_repo_baseline_parses():
    ws = WaiverSet.load(Path(__file__).parents[2] / ".reprolint.toml")
    assert len(ws) >= 1
    assert all(w.reason for w in ws)


def test_load_waivers_default_absent_is_none(tmp_path, monkeypatch):
    from repro.verify import load_waivers

    monkeypatch.chdir(tmp_path)
    assert load_waivers() is None
    with pytest.raises(VerificationError):
        load_waivers(tmp_path / "nope.toml")
