"""Waiver expiry: dated baselines surface instead of rotting."""

from __future__ import annotations

from datetime import date

import pytest

from repro.errors import VerificationError
from repro.verify import Report, Waiver, WaiverSet


def _report_with(rule: str, n: int = 1) -> Report:
    report = Report(target="t")
    for i in range(n):
        report.flag(rule, f"seeded finding {i}", layout="cell", subject="M2")
    return report


def test_malformed_expires_date_raises():
    with pytest.raises(VerificationError) as excinfo:
        Waiver(rule="EM-WIRE-DENSITY", reason="r", expires="next tuesday")
    assert "YYYY-MM-DD" in str(excinfo.value)


def test_undated_waiver_never_expires():
    waiver = Waiver(rule="EM-WIRE-DENSITY", reason="r")
    assert not waiver.is_expired(date(2999, 1, 1))


def test_dated_waiver_suppresses_until_its_date():
    waiver = Waiver(
        rule="EM-WIRE-DENSITY", reason="r", expires="2026-06-30"
    )
    assert not waiver.is_expired(date(2026, 6, 29))
    # The expiry date itself is inclusive.
    assert not waiver.is_expired(date(2026, 6, 30))
    assert waiver.is_expired(date(2026, 7, 1))


def test_live_waiver_still_suppresses():
    report = _report_with("EM-WIRE-DENSITY")
    waivers = WaiverSet(
        [Waiver(rule="EM-WIRE-DENSITY", reason="r", expires="2026-06-30")]
    )
    assert report.apply_waivers(waivers, today=date(2026, 1, 1)) == 1
    assert report.ok
    assert not report.errors


def test_expired_waiver_stops_suppressing_and_is_flagged():
    report = _report_with("EM-WIRE-DENSITY")
    waivers = WaiverSet(
        [Waiver(rule="EM-WIRE-DENSITY", reason="r", expires="2026-06-30")]
    )
    assert report.apply_waivers(waivers, today=date(2026, 7, 1)) == 0
    # The original error is back in force...
    assert [v.rule for v in report.errors] == ["EM-WIRE-DENSITY"]
    # ...and the stale baseline entry is itself reported, as a warning.
    assert report.count("LINT-WAIVER-EXPIRED") == 1
    (stale,) = [
        v for v in report.violations if v.rule == "LINT-WAIVER-EXPIRED"
    ]
    assert not stale.is_error
    assert "2026-06-30" in stale.message


def test_expired_waiver_flagged_once_per_report():
    report = _report_with("EM-WIRE-DENSITY", n=3)
    waivers = WaiverSet(
        [Waiver(rule="EM-WIRE-DENSITY", reason="r", expires="2026-06-30")]
    )
    report.apply_waivers(waivers, today=date(2026, 7, 1))
    # Re-applying (flow code paths may fold waivers in more than once)
    # must not duplicate the notice either.
    report.apply_waivers(waivers, today=date(2026, 7, 1))
    assert report.count("LINT-WAIVER-EXPIRED") == 1
    assert len(report.errors) == 3


def test_waiverset_load_parses_expires(tmp_path):
    # tomllib parses an unquoted date as datetime.date; a quoted one
    # stays a string — both must normalize to the ISO string.
    baseline = tmp_path / "w.toml"
    baseline.write_text(
        "[[waive]]\n"
        'rule = "EM-WIRE-DENSITY"\n'
        'reason = "bare toml date"\n'
        "expires = 2026-06-30\n"
        "[[waive]]\n"
        'rule = "IR-DROP"\n'
        'reason = "quoted date"\n'
        'expires = "2026-12-31"\n'
    )
    waivers = WaiverSet.load(baseline)
    assert [w.expires for w in waivers] == ["2026-06-30", "2026-12-31"]


def test_waiverset_load_rejects_malformed_expires(tmp_path):
    baseline = tmp_path / "w.toml"
    baseline.write_text(
        "[[waive]]\n"
        'rule = "EM-WIRE-DENSITY"\n'
        'reason = "r"\n'
        'expires = "30/06/2026"\n'
    )
    with pytest.raises(VerificationError):
        WaiverSet.load(baseline)
