"""Verification wired into the generator, the flow and the CLI."""

import json

import pytest

from repro.cli import main
from repro.errors import VerificationError
from repro.flow import HierarchicalFlow
from repro.geometry import Instance, Point
from repro.verify import Report, verify_assembly, verify_layout


def test_generator_attaches_report_by_default(dp_primitive, dp_base):
    layout = dp_primitive.generate(dp_base, "ABAB")
    report = layout.metadata["verification"]
    assert isinstance(report, Report)
    assert report.ok


def test_generator_verify_false_skips(dp_primitive, dp_base):
    layout = dp_primitive.generate(dp_base, "ABAB", verify=False)
    assert "verification" not in layout.metadata


def test_generator_strict_passes_on_clean(dp_primitive, dp_base):
    layout = dp_primitive.generate(dp_base, "ABAB", strict=True)
    assert layout.metadata["verification"].ok


def test_verify_layout_strict_raises_on_seeded_error(dp_layout, tech):
    from dataclasses import replace

    dev = dp_layout.devices[0]
    dp_layout.devices[0] = replace(dev, rect=dev.rect.translated(7, 0))
    with pytest.raises(VerificationError) as excinfo:
        verify_layout(dp_layout, tech, strict=True)
    assert "DRC-POLY-PITCH" in str(excinfo.value)
    assert excinfo.value.report is not None


def test_verify_assembly_clean_when_disjoint(dp_layout, tech):
    instances = [
        Instance("a", dp_layout, Point(0, 0)),
        Instance("b", dp_layout, Point(dp_layout.width + 1000, 0)),
    ]
    report = verify_assembly("pair", instances, tech)
    assert report.ok


def test_verify_assembly_flags_overlap(dp_layout, tech):
    instances = [
        Instance("a", dp_layout, Point(0, 0)),
        Instance("b", dp_layout, Point(40, 40)),
    ]
    report = verify_assembly("pair", instances, tech)
    assert report.count("DRC-PLACE-OVERLAP") == 1
    assert not report.ok


@pytest.fixture(scope="module")
def csamp_result(tech):
    from pathlib import Path

    from repro.circuits.csamp import CommonSourceAmpCircuit
    from repro.verify import WaiverSet

    # The repository baseline, like the CLI loads by default: the audit
    # flags the reconciled load sizing's min-width jumpers (a known
    # generator limitation with a committed waiver).
    waivers = WaiverSet.load(Path(__file__).parents[2] / ".reprolint.toml")
    flow = HierarchicalFlow(
        tech, placer_iterations=150, strict=True, waivers=waivers
    )
    return flow.run(
        CommonSourceAmpCircuit(tech), flavor="conventional", measure=False
    )


def test_flow_populates_verification(csamp_result):
    report = csamp_result.verification
    assert isinstance(report, Report)
    assert report.ok  # strict=True above: errors would have raised
    assert report.checked_shapes > 0


def test_flow_verify_disabled(tech):
    from repro.circuits.csamp import CommonSourceAmpCircuit

    flow = HierarchicalFlow(tech, placer_iterations=150, verify=False)
    result = flow.run(
        CommonSourceAmpCircuit(tech), flavor="conventional", measure=False
    )
    assert result.verification is None


def test_cli_verify_primitive_exits_zero(capsys):
    assert main(["verify", "diode_load", "--fins", "48",
                 "--variants", "1"]) == 0
    out = capsys.readouterr().out
    assert "diode_load" in out
    assert "error(s)" in out or "CLEAN" in out


def test_cli_verify_json_output(capsys):
    assert main(["verify", "diode_load", "--fins", "48",
                 "--variants", "1", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data and all(d["ok"] for d in data)
    assert all("counts" in d for d in data)


def test_cli_verify_strict_fails_on_warnings(capsys):
    # Every generated cell carries via-enclosure warnings by design, so
    # --strict must flip the exit code and print the report.
    assert main(["verify", "diode_load", "--fins", "48",
                 "--variants", "1", "--strict"]) == 1
    out = capsys.readouterr().out
    assert "DRC-VIA-ENCLOSURE" in out


def test_cli_verify_circuit_exits_zero(capsys):
    assert main(["verify", "csamp"]) == 0
    assert "cs_amplifier" in capsys.readouterr().out


def test_cli_verify_unknown_target_exits_nonzero():
    with pytest.raises(SystemExit):
        main(["verify", "no_such_thing"])


def test_cli_verify_passive_target_rejected():
    with pytest.raises(SystemExit):
        main(["verify", "capacitor"])


def test_cli_verify_includes_schematic_erc(capsys):
    assert main(["verify", "diode_load", "--fins", "48",
                 "--variants", "1"]) == 0
    assert "schematic ERC" in capsys.readouterr().out


def test_cli_verify_no_erc_flag(capsys):
    assert main(["verify", "diode_load", "--fins", "48",
                 "--variants", "1", "--no-erc"]) == 0
    assert "schematic ERC" not in capsys.readouterr().out


def test_cli_verify_format_json(capsys):
    assert main(["verify", "diode_load", "--fins", "48",
                 "--variants", "1", "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data and all(d["ok"] for d in data)
    assert any("waived" in d for d in data)


def test_cli_verify_severity_warning_fails(capsys):
    # Every generated cell carries via-enclosure warnings by design.
    assert main(["verify", "diode_load", "--fins", "48",
                 "--variants", "1", "--severity", "warning"]) == 1
    assert "DRC-VIA-ENCLOSURE" in capsys.readouterr().out


def test_cli_verify_waivers_flag(tmp_path, capsys):
    baseline = tmp_path / "w.toml"
    baseline.write_text(
        "[[waive]]\n"
        'rule = "DRC-VIA-ENCLOSURE"\n'
        'reason = "generator stacks redundant cuts"\n'
    )
    assert main(["verify", "diode_load", "--fins", "48", "--variants", "1",
                 "--severity", "warning", "--waivers", str(baseline)]) == 0
    assert "waived" in capsys.readouterr().out


def test_cli_verify_missing_waiver_file_raises():
    from repro.errors import VerificationError

    with pytest.raises(VerificationError):
        main(["verify", "diode_load", "--fins", "48", "--variants", "1",
              "--waivers", "no/such/file.toml"])
