#!/usr/bin/env python3
"""Determinism-hazard self-lint for the repro codebase.

The repository promises byte-deterministic artifacts: journals resume,
evaluation caches hash their keys, and `repro verify/ingest --format
json` output must be identical across runs and ``--jobs`` values.
Five source-level hazards quietly break that promise — or, for the
last two, the performance and measurement contracts next to it — and
this tool flags them with a small AST walk (stdlib only, no
third-party deps):

* ``DEV-RANDOM`` — a call to the *module-level* :mod:`random` API
  (``random.random()``, ``random.shuffle()``, a bare ``shuffle()``
  imported from :mod:`random`, ...).  The global RNG is unseeded
  process state; deterministic code must thread an explicit
  ``random.Random(seed)`` instance.
* ``DEV-WALLCLOCK`` — ``time.time()`` / ``time.time_ns()`` /
  ``datetime.now()`` / ``utcnow()`` / ``today()`` reached from a
  cache-key or journal path (a module or enclosing function whose name
  mentions ``cache``, ``journal`` or ``checkpoint``).  Wall-clock
  values in keys or journaled records make reruns diverge byte-wise.
  Timing *measurements* elsewhere (profilers, wall_time metrics) are
  legitimate and out of scope.
* ``DEV-SET-ORDER`` — a ``for`` loop or comprehension iterating
  directly over a set literal, set comprehension or ``set(...)`` /
  ``frozenset(...)`` call.  Set iteration order depends on insertion
  history and hash seeding; anything it feeds into journaled or
  printed output is nondeterministic.  Iterate over ``sorted(...)``
  instead.
* ``DEV-BATCH-SOLVE`` — an ``np.linalg.solve(...)`` call lexically
  inside a ``for``/``while`` loop in batch code (a module or enclosing
  function whose name mentions ``batch``).  Looping per-member dense
  solves is exactly what the stacked ``(K, N, N)`` fast path exists to
  replace; stack the systems into one call, or mask the members, and
  route deliberate serial fallbacks through the member's thunk.
* ``DEV-SURROGATE-LEAK`` — a surrogate prediction flowing into a
  journaled, cached or reported value: an argument mentioning
  ``predict``/``surrogate`` identifiers passed to a journal/cache write
  (``record_success``, ``record_failure``, ``put``) or bound to a
  result-bearing keyword (``values=``, ``cost=``, ``payload=``,
  ``metrics=``) of any call.  The surrogate contract is that
  predictions decide *order and pruning only* — every journaled
  payload, cache value and reported metric must come from real
  simulation.

A finding can be suppressed for one line with a trailing
``# devlint: ok`` comment (reviewed, understood, deliberate).

Usage::

    python tools/devlint.py [PATH ...]     # default: src/repro tools

Output is one ``path:line: CODE message`` line per finding, sorted, so
the tool's own output is deterministic.  Exit code 1 when anything is
flagged.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

#: Module-level random API whose use implies the unseeded global RNG.
RANDOM_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: Wall-clock constructors that must stay out of cache/journal paths.
TIME_ATTRS = frozenset({"time", "time_ns"})
DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Name fragments that mark a module/function as a cache-key or
#: journal path for the DEV-WALLCLOCK scope.
CLOCK_SCOPES = ("cache", "journal", "checkpoint")

#: Name fragments that mark a module/function as batch-kernel code for
#: the DEV-BATCH-SOLVE scope.
BATCH_SCOPES = ("batch",)

#: Journal/cache write methods that must never receive surrogate
#: predictions as data.
SURROGATE_SINKS = frozenset({"record_success", "record_failure", "put"})

#: Result-bearing keyword arguments that must carry measured values.
SURROGATE_VALUE_KEYWORDS = frozenset({"values", "cost", "payload", "metrics"})

#: Identifier fragments marking a value as surrogate-derived.
SURROGATE_TAINT = re.compile(r"predict|surrogate", re.IGNORECASE)

SUPPRESS_MARK = "devlint: ok"


def _mentions_surrogate(node: ast.expr) -> bool:
    """True when any identifier in the expression looks surrogate-derived."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and SURROGATE_TAINT.search(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and SURROGATE_TAINT.search(sub.attr):
            return True
    return False


@dataclass(frozen=True, order=True)
class Finding:
    """One flagged hazard, orderable for deterministic output."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _is_numpy_linalg_solve(func: ast.expr) -> bool:
    """True for ``np.linalg.solve`` / ``numpy.linalg.solve`` references."""
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "solve"
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "linalg"
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id in ("np", "numpy")
    )


def _is_set_expression(node: ast.expr) -> bool:
    """True for expressions that are unambiguously sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class _Checker(ast.NodeVisitor):
    """AST walk collecting determinism hazards for one file."""

    def __init__(self, path: str, module_name: str, source: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self._lines = source.splitlines()
        self._func_stack: list[str] = []
        self._loop_depth = 0
        # Names bound by `from random import ...` / `import random as r`.
        self._random_names: set[str] = set()
        self._random_modules: set[str] = set()
        self._module_scoped = any(
            token in module_name.lower() for token in CLOCK_SCOPES
        )
        self._module_batch_scoped = any(
            token in module_name.lower() for token in BATCH_SCOPES
        )

    # -- helpers -------------------------------------------------------

    def _suppressed(self, line: int) -> bool:
        if 1 <= line <= len(self._lines):
            return SUPPRESS_MARK in self._lines[line - 1]
        return False

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if not self._suppressed(line):
            self.findings.append(Finding(self.path, line, code, message))

    def _in_clock_scope(self) -> bool:
        if self._module_scoped:
            return True
        return any(
            token in name.lower()
            for name in self._func_stack
            for token in CLOCK_SCOPES
        )

    def _in_batch_scope(self) -> bool:
        if self._module_batch_scoped:
            return True
        return any(
            token in name.lower()
            for name in self._func_stack
            for token in BATCH_SCOPES
        )

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._random_modules.add(alias.asname or "random")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in RANDOM_FUNCS:
                    self._random_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- function nesting ----------------------------------------------

    def _visit_func(self, node) -> None:
        self._func_stack.append(node.name)
        # A nested def's body runs per call, not per enclosing-loop
        # iteration — it starts outside any loop.
        saved, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = saved
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner, attr = func.value.id, func.attr
            if owner in self._random_modules and attr in RANDOM_FUNCS:
                self._flag(
                    node, "DEV-RANDOM",
                    f"module-level random.{attr}() uses the unseeded "
                    f"global RNG; thread a random.Random(seed) instance",
                )
            elif owner == "time" and attr in TIME_ATTRS:
                if self._in_clock_scope():
                    self._flag(
                        node, "DEV-WALLCLOCK",
                        f"time.{attr}() in a cache/journal path makes "
                        f"reruns diverge; derive keys and journaled "
                        f"records from content, not the clock",
                    )
            elif owner == "datetime" and attr in DATETIME_ATTRS:
                if self._in_clock_scope():
                    self._flag(
                        node, "DEV-WALLCLOCK",
                        f"datetime.{attr}() in a cache/journal path "
                        f"makes reruns diverge; derive keys and "
                        f"journaled records from content, not the clock",
                    )
        elif isinstance(func, ast.Name) and func.id in self._random_names:
            self._flag(
                node, "DEV-RANDOM",
                f"{func.id}() from `from random import ...` uses the "
                f"unseeded global RNG; thread a random.Random(seed) "
                f"instance",
            )
        if (
            _is_numpy_linalg_solve(func)
            and self._loop_depth > 0
            and self._in_batch_scope()
        ):
            self._flag(
                node, "DEV-BATCH-SOLVE",
                "per-member np.linalg.solve in a batch loop defeats the "
                "stacked (K, N, N) fast path; stack the systems or mask "
                "the members, and route deliberate serial fallbacks "
                "through the member's thunk",
            )
        self._check_surrogate_leak(node, func)
        self.generic_visit(node)

    def _check_surrogate_leak(self, node: ast.Call, func: ast.expr) -> None:
        """Flag surrogate-derived values handed to a result sink."""
        tainted_sink = (
            isinstance(func, ast.Attribute)
            and func.attr in SURROGATE_SINKS
            and (
                any(_mentions_surrogate(arg) for arg in node.args)
                or any(
                    _mentions_surrogate(kw.value) for kw in node.keywords
                )
            )
        )
        tainted_keyword = any(
            kw.arg in SURROGATE_VALUE_KEYWORDS
            and _mentions_surrogate(kw.value)
            for kw in node.keywords
        )
        if tainted_sink or tainted_keyword:
            self._flag(
                node, "DEV-SURROGATE-LEAK",
                "surrogate prediction flows into a journaled/cached/"
                "reported value; predictions may only order and prune "
                "sweeps — journals, caches and metrics must carry "
                "measured simulation results",
            )

    # -- set iteration -------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expression(node.iter):
            self._flag(
                node, "DEV-SET-ORDER",
                "for-loop iterates a set directly; order is "
                "nondeterministic — wrap in sorted(...)",
            )
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            if _is_set_expression(gen.iter):
                self._flag(
                    gen.iter, "DEV-SET-ORDER",
                    "comprehension iterates a set directly; order is "
                    "nondeterministic — wrap in sorted(...)",
                )
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one source text; returns sorted findings."""
    module_name = Path(path).stem
    tree = ast.parse(source, filename=path)
    checker = _Checker(path, module_name, source)
    checker.visit(tree)
    return sorted(checker.findings)


def lint_paths(paths: list[Path]) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    files: list[Path] = []
    for root in paths:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.suffix == ".py":
            files.append(root)
    findings: list[Finding] = []
    for file in files:
        findings.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file))
        )
    return sorted(findings)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="devlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        default=[Path("src/repro"), Path("tools")],
        help="files or directories to lint (default: src/repro tools)",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"devlint: {len(findings)} finding(s)")
        return 1
    print("devlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
